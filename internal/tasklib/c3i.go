package tasklib

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"vdce/internal/repository"
)

// The C3I (command, control, communications & intelligence) library the
// paper lists as an editor menu group. The pipeline is the classic
// surveillance flow: sensors observe targets, observations are fused,
// tracks are smoothed, threats are scored, and a report is produced.

// Track is one target estimate: position, velocity, and a classifier
// label. Sensors emit noisy Tracks; fusion and filtering refine them.
type Track struct {
	ID       int
	X, Y     float64 // position (km)
	VX, VY   float64 // velocity (km/s)
	Class    string  // "unknown", "friendly", "hostile"
	Strength float64 // detection confidence in (0, 1]
}

// Threat is a scored track produced by Threat_Evaluation.
type Threat struct {
	TrackID int
	Score   float64 // higher is more urgent
	Reason  string
}

// registerC3ILibrary adds the C3I library tasks.
func registerC3ILibrary(reg func(Spec)) {
	const nominalTargets = 64
	ops := float64(nominalTargets)

	reg(Spec{
		Name: "Sensor_Feed", Library: "c3i", InPorts: 0, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:     ops * 1000,
			CommunicationBytes: nominalTargets * 64,
			RequiredMemBytes:   1 << 20,
			BaseTime:           baseTimeFor(ops * 1000),
		},
		Fn: func(c *Context) ([]Value, error) {
			n, err := c.IntArg("targets", nominalTargets)
			if err != nil {
				return nil, err
			}
			seed, err := c.Int64Arg("seed", 1)
			if err != nil {
				return nil, err
			}
			noise, err := c.FloatArg("noise", 0.1)
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("tasklib: Sensor_Feed targets=%d", n)
			}
			rng := rand.New(rand.NewSource(seed))
			tracks := make([]Track, n)
			for i := range tracks {
				cls := "unknown"
				switch rng.Intn(3) {
				case 0:
					cls = "friendly"
				case 1:
					cls = "hostile"
				}
				tracks[i] = Track{
					ID:       i,
					X:        rng.Float64()*200 - 100 + rng.NormFloat64()*noise,
					Y:        rng.Float64()*200 - 100 + rng.NormFloat64()*noise,
					VX:       rng.NormFloat64() * 0.3,
					VY:       rng.NormFloat64() * 0.3,
					Class:    cls,
					Strength: 0.5 + rng.Float64()*0.5,
				}
			}
			return []Value{tracks}, nil
		},
	})

	reg(Spec{
		Name: "Data_Fusion", Library: "c3i", InPorts: 2, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:     ops * ops * 10,
			CommunicationBytes: 2 * nominalTargets * 64,
			RequiredMemBytes:   2 << 20,
			BaseTime:           baseTimeFor(ops * ops * 10),
			Parallelizable:     true,
			SerialFraction:     0.2,
		},
		Fn: func(c *Context) ([]Value, error) {
			a, err := trackInput(c, 0)
			if err != nil {
				return nil, err
			}
			b, err := trackInput(c, 1)
			if err != nil {
				return nil, err
			}
			return []Value{FuseTracks(a, b, 5.0)}, nil
		},
	})

	reg(Spec{
		Name: "Track_Filter", Library: "c3i", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   ops * 100,
			RequiredMemBytes: 1 << 20,
			BaseTime:         baseTimeFor(ops * 100),
		},
		Fn: func(c *Context) ([]Value, error) {
			in, err := trackInput(c, 0)
			if err != nil {
				return nil, err
			}
			out := make([]Track, len(in))
			copy(out, in)
			// One alpha-beta smoothing step toward the predicted position.
			const alpha = 0.85
			for i := range out {
				px := out[i].X + out[i].VX
				py := out[i].Y + out[i].VY
				out[i].X = alpha*out[i].X + (1-alpha)*px
				out[i].Y = alpha*out[i].Y + (1-alpha)*py
			}
			return []Value{out}, nil
		},
	})

	reg(Spec{
		Name: "Threat_Evaluation", Library: "c3i", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   ops * 200,
			RequiredMemBytes: 1 << 20,
			BaseTime:         baseTimeFor(ops * 200),
		},
		Fn: func(c *Context) ([]Value, error) {
			in, err := trackInput(c, 0)
			if err != nil {
				return nil, err
			}
			return []Value{EvaluateThreats(in)}, nil
		},
	})

	reg(Spec{
		Name: "Report_Generator", Library: "c3i", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   ops * 50,
			RequiredMemBytes: 1 << 20,
			BaseTime:         baseTimeFor(ops * 50),
		},
		Fn: func(c *Context) ([]Value, error) {
			if len(c.In) < 1 {
				return nil, fmt.Errorf("tasklib: Report_Generator needs an input")
			}
			threats, ok := c.In[0].([]Threat)
			if !ok {
				return nil, fmt.Errorf("tasklib: input 0 is %T, want []Threat", c.In[0])
			}
			var b strings.Builder
			fmt.Fprintf(&b, "C3I THREAT REPORT: %d threats\n", len(threats))
			for i, th := range threats {
				if i >= 10 {
					fmt.Fprintf(&b, "  ... %d more\n", len(threats)-10)
					break
				}
				fmt.Fprintf(&b, "  track %3d score %6.2f (%s)\n", th.TrackID, th.Score, th.Reason)
			}
			return []Value{b.String()}, nil
		},
	})
}

func trackInput(c *Context, i int) ([]Track, error) {
	if i < 0 || i >= len(c.In) {
		return nil, fmt.Errorf("tasklib: no input %d", i)
	}
	t, ok := c.In[i].([]Track)
	if !ok {
		return nil, fmt.Errorf("tasklib: input %d is %T, want []Track", i, c.In[i])
	}
	return t, nil
}

// FuseTracks merges two observation sets: tracks within gate km of each
// other are considered the same target and averaged weighted by strength;
// unmatched tracks pass through. The result is sorted by ID.
func FuseTracks(a, b []Track, gate float64) []Track {
	used := make([]bool, len(b))
	var out []Track
	for _, ta := range a {
		best, bestD := -1, gate
		for j, tb := range b {
			if used[j] {
				continue
			}
			d := math.Hypot(ta.X-tb.X, ta.Y-tb.Y)
			if d <= bestD {
				best, bestD = j, d
			}
		}
		if best == -1 {
			out = append(out, ta)
			continue
		}
		tb := b[best]
		used[best] = true
		wa, wb := ta.Strength, tb.Strength
		sum := wa + wb
		merged := Track{
			ID:       ta.ID,
			X:        (ta.X*wa + tb.X*wb) / sum,
			Y:        (ta.Y*wa + tb.Y*wb) / sum,
			VX:       (ta.VX*wa + tb.VX*wb) / sum,
			VY:       (ta.VY*wa + tb.VY*wb) / sum,
			Class:    ta.Class,
			Strength: math.Min(1, sum),
		}
		if merged.Class == "unknown" {
			merged.Class = tb.Class
		}
		out = append(out, merged)
	}
	for j, tb := range b {
		if !used[j] {
			out = append(out, tb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EvaluateThreats scores tracks: hostile class, proximity to the origin
// (the defended asset), and inbound velocity all raise the score. Tracks
// scoring zero are omitted. Results are sorted by descending score.
func EvaluateThreats(tracks []Track) []Threat {
	var out []Threat
	for _, t := range tracks {
		var score float64
		var reasons []string
		if t.Class == "hostile" {
			score += 50
			reasons = append(reasons, "hostile")
		}
		dist := math.Hypot(t.X, t.Y)
		if dist < 50 {
			score += (50 - dist)
			reasons = append(reasons, "close")
		}
		// Closing velocity: negative radial speed means inbound.
		if dist > 1e-9 {
			radial := (t.X*t.VX + t.Y*t.VY) / dist
			if radial < 0 {
				score += -radial * 100
				reasons = append(reasons, "inbound")
			}
		}
		score *= t.Strength
		if score > 0 {
			out = append(out, Threat{TrackID: t.ID, Score: score, Reason: strings.Join(reasons, "+")})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].TrackID < out[j].TrackID
	})
	return out
}
