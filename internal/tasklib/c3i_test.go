package tasklib

import (
	"math"
	"strings"
	"testing"
)

func TestSensorFeedDeterministic(t *testing.T) {
	r := Default()
	c := &Context{Args: map[string]string{"targets": "20", "seed": "9"}}
	a := run(t, r, "Sensor_Feed", c)[0].([]Track)
	b := run(t, r, "Sensor_Feed", c)[0].([]Track)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("track counts %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different tracks")
		}
	}
	spec, _ := r.Get("Sensor_Feed")
	if _, err := spec.Fn(&Context{Args: map[string]string{"targets": "-1"}}); err == nil {
		t.Fatal("negative targets accepted")
	}
}

func TestFuseTracksMatching(t *testing.T) {
	a := []Track{{ID: 1, X: 0, Y: 0, Strength: 0.5, Class: "unknown"}}
	b := []Track{{ID: 7, X: 1, Y: 0, Strength: 0.5, Class: "hostile"}}
	fused := FuseTracks(a, b, 5)
	if len(fused) != 1 {
		t.Fatalf("fused = %d tracks, want 1", len(fused))
	}
	// Position is the strength-weighted mean; class inherited from b.
	if math.Abs(fused[0].X-0.5) > 1e-12 || fused[0].Class != "hostile" {
		t.Fatalf("fused track wrong: %+v", fused[0])
	}
	// Outside the gate both survive.
	far := FuseTracks(a, []Track{{ID: 7, X: 100, Strength: 0.5}}, 5)
	if len(far) != 2 {
		t.Fatalf("far tracks fused: %v", far)
	}
	// Nil inputs are fine.
	if got := FuseTracks(nil, nil, 5); len(got) != 0 {
		t.Fatal("empty fusion produced tracks")
	}
}

func TestEvaluateThreatsOrdering(t *testing.T) {
	tracks := []Track{
		{ID: 1, X: 100, Y: 100, Class: "friendly", Strength: 1},            // no threat
		{ID: 2, X: 10, Y: 0, VX: -1, VY: 0, Class: "hostile", Strength: 1}, // big threat
		{ID: 3, X: 40, Y: 0, Class: "hostile", Strength: 1},                // medium
	}
	threats := EvaluateThreats(tracks)
	if len(threats) != 2 {
		t.Fatalf("threats = %v", threats)
	}
	if threats[0].TrackID != 2 || threats[1].TrackID != 3 {
		t.Fatalf("ordering wrong: %v", threats)
	}
	if threats[0].Score <= threats[1].Score {
		t.Fatal("scores not descending")
	}
	if !strings.Contains(threats[0].Reason, "hostile") || !strings.Contains(threats[0].Reason, "inbound") {
		t.Fatalf("reasons missing: %q", threats[0].Reason)
	}
}

func TestC3ITaskWrappers(t *testing.T) {
	r := Default()
	s1 := run(t, r, "Sensor_Feed", &Context{Args: map[string]string{"targets": "30", "seed": "1"}})[0]
	s2 := run(t, r, "Sensor_Feed", &Context{Args: map[string]string{"targets": "30", "seed": "2"}})[0]
	fused := run(t, r, "Data_Fusion", &Context{In: []Value{s1, s2}})[0]
	filtered := run(t, r, "Track_Filter", &Context{In: []Value{fused}})[0]
	threats := run(t, r, "Threat_Evaluation", &Context{In: []Value{filtered}})[0]
	report := run(t, r, "Report_Generator", &Context{In: []Value{threats}})[0].(string)
	if !strings.Contains(report, "C3I THREAT REPORT") {
		t.Fatalf("report = %q", report)
	}
	// Type errors propagate.
	spec, _ := r.Get("Data_Fusion")
	if _, err := spec.Fn(&Context{In: []Value{"x", "y"}}); err == nil {
		t.Fatal("junk inputs accepted")
	}
	rspec, _ := r.Get("Report_Generator")
	if _, err := rspec.Fn(&Context{In: []Value{"zz"}}); err == nil {
		t.Fatal("junk threats accepted")
	}
}
