package tasklib

import (
	"fmt"
	"strconv"

	"vdce/internal/afg"
)

// BuildLinearEquationSolver constructs the paper's Fig. 1 application:
// the Linear Equation Solver. The graph computes x = inv(A) * b via LU
// decomposition and verifies the residual:
//
//	Matrix_Generate(A)──► LU_Decomposition ──► Matrix_Inversion ──┐
//	        │                (parallel x2)                        ▼
//	        │             Vector_Generate(b) ─────────► Matrix_Multiplication ──► x
//	        │                     │                               │
//	        └─────────────────────┴───────────► Residual_Norm ◄───┘
//
// Task properties mirror the figure's two properties windows:
// LU_Decomposition runs in parallel mode on two nodes with matrix_A.dat
// as input; Matrix_Multiplication is sequential with two dataflow inputs,
// a preferred machine type of "SUN Solaris", and vector_X.dat as output.
func BuildLinearEquationSolver(n int, seed int64) (*afg.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("tasklib: LES size %d", n)
	}
	g := afg.NewGraph("Linear Equation Solver")
	g.Owner = "user_k"
	matBytes := int64(n) * int64(n) * 8
	vecBytes := int64(n) * 8
	g.InputSizeBytes = matBytes

	genA := g.AddTask("Matrix_Generate", "matrix", 0, 1)
	genB := g.AddTask("Vector_Generate", "matrix", 0, 1)
	lu := g.AddTask("LU_Decomposition", "matrix", 1, 1)
	inv := g.AddTask("Matrix_Inversion", "matrix", 1, 1)
	mul := g.AddTask("Matrix_Multiplication", "matrix", 2, 1)
	res := g.AddTask("Residual_Norm", "matrix", 3, 1)

	if err := g.SetProps(genA, afg.Properties{
		Mode: afg.Sequential,
		Args: map[string]string{"n": strconv.Itoa(n), "seed": strconv.FormatInt(seed, 10)},
		Outputs: []afg.FileSpec{
			{Path: "/users/VDCE/user_k/matrix_A.dat", SizeBytes: matBytes},
		},
	}); err != nil {
		return nil, err
	}
	if err := g.SetProps(genB, afg.Properties{
		Mode: afg.Sequential,
		Args: map[string]string{"n": strconv.Itoa(n), "seed": strconv.FormatInt(seed+1, 10)},
		Outputs: []afg.FileSpec{
			{Path: "/users/VDCE/user_k/vector_b.dat", SizeBytes: vecBytes},
		},
	}); err != nil {
		return nil, err
	}
	// Fig. 1, left properties window.
	if err := g.SetProps(lu, afg.Properties{
		Mode:  afg.Parallel,
		Nodes: 2,
		Inputs: []afg.FileSpec{
			{Path: "/users/VDCE/user_k/matrix_A.dat", SizeBytes: matBytes, Dataflow: true},
		},
	}); err != nil {
		return nil, err
	}
	if err := g.SetProps(inv, afg.Properties{Mode: afg.Parallel, Nodes: 2}); err != nil {
		return nil, err
	}
	// Fig. 1, right properties window.
	if err := g.SetProps(mul, afg.Properties{
		Mode:        afg.Sequential,
		MachineType: "SUN Solaris",
		Outputs: []afg.FileSpec{
			{Path: "/users/VDCE/user_k/vector_X.dat", SizeBytes: vecBytes},
		},
	}); err != nil {
		return nil, err
	}
	if err := g.SetProps(res, afg.Properties{Mode: afg.Sequential}); err != nil {
		return nil, err
	}

	type conn struct {
		from     afg.TaskID
		fp       int
		to       afg.TaskID
		tp       int
		sizeHint int64
	}
	for _, c := range []conn{
		{genA, 0, lu, 0, matBytes},
		{lu, 0, inv, 0, 2 * matBytes},
		{inv, 0, mul, 0, matBytes},
		{genB, 0, mul, 1, vecBytes},
		{genA, 0, res, 0, matBytes},
		{mul, 0, res, 1, vecBytes},
		{genB, 0, res, 2, vecBytes},
	} {
		if err := g.Connect(c.from, c.fp, c.to, c.tp, c.sizeHint); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildC3IPipeline constructs a command-and-control application from the
// paper's C3I library: two sensor feeds fused, filtered, threat-scored,
// and reported.
func BuildC3IPipeline(targets int, seed int64) (*afg.Graph, error) {
	if targets < 0 {
		return nil, fmt.Errorf("tasklib: negative target count %d", targets)
	}
	g := afg.NewGraph("C3I Surveillance Pipeline")
	g.InputSizeBytes = int64(targets) * 64

	s1 := g.AddTask("Sensor_Feed", "c3i", 0, 1)
	s2 := g.AddTask("Sensor_Feed", "c3i", 0, 1)
	fuse := g.AddTask("Data_Fusion", "c3i", 2, 1)
	filt := g.AddTask("Track_Filter", "c3i", 1, 1)
	eval := g.AddTask("Threat_Evaluation", "c3i", 1, 1)
	rep := g.AddTask("Report_Generator", "c3i", 1, 1)

	ts := strconv.Itoa(targets)
	if err := g.SetProps(s1, afg.Properties{
		Args: map[string]string{"targets": ts, "seed": strconv.FormatInt(seed, 10)},
	}); err != nil {
		return nil, err
	}
	if err := g.SetProps(s2, afg.Properties{
		Args: map[string]string{"targets": ts, "seed": strconv.FormatInt(seed+100, 10)},
	}); err != nil {
		return nil, err
	}
	if err := g.SetProps(fuse, afg.Properties{Mode: afg.Parallel, Nodes: 2}); err != nil {
		return nil, err
	}

	trackBytes := int64(targets) * 64
	type conn struct {
		from afg.TaskID
		to   afg.TaskID
		tp   int
	}
	for _, c := range []conn{
		{s1, fuse, 0}, {s2, fuse, 1},
	} {
		if err := g.Connect(c.from, 0, c.to, c.tp, trackBytes); err != nil {
			return nil, err
		}
	}
	for _, c := range []conn{
		{fuse, filt, 0}, {filt, eval, 0}, {eval, rep, 0},
	} {
		if err := g.Connect(c.from, 0, c.to, c.tp, trackBytes); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
