package tasklib

import (
	"strings"
	"testing"

	"vdce/internal/afg"
	"vdce/internal/linalg"
)

func TestBuildLinearEquationSolver(t *testing.T) {
	g, err := BuildLinearEquationSolver(32, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 6 {
		t.Fatalf("LES has %d tasks", len(g.Tasks))
	}
	// Fig. 1 fidelity: LU parallel on 2 nodes, MatMult sequential with a
	// machine-type preference and two dataflow inputs.
	var lu, mul *afg.Task
	for _, task := range g.Tasks {
		switch task.Name {
		case "LU_Decomposition":
			lu = task
		case "Matrix_Multiplication":
			mul = task
		}
	}
	if lu == nil || mul == nil {
		t.Fatal("missing Fig. 1 tasks")
	}
	if lu.Props.Mode != afg.Parallel || lu.Props.Nodes != 2 {
		t.Fatalf("LU props: %+v", lu.Props)
	}
	if !strings.Contains(lu.PropertiesWindow(), "matrix_A.dat") {
		t.Fatalf("LU window missing input file:\n%s", lu.PropertiesWindow())
	}
	if mul.Props.Mode != afg.Sequential || mul.Props.MachineType != "SUN Solaris" {
		t.Fatalf("MatMult props: %+v", mul.Props)
	}
	df := 0
	for _, in := range mul.Props.Inputs {
		if in.Dataflow {
			df++
		}
	}
	if df != 2 {
		t.Fatalf("MatMult dataflow inputs = %d, want 2", df)
	}
	if !strings.Contains(mul.PropertiesWindow(), "vector_X.dat") {
		t.Fatalf("MatMult window missing output file:\n%s", mul.PropertiesWindow())
	}
	if _, err := BuildLinearEquationSolver(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestLESExecutesCorrectly(t *testing.T) {
	g, err := BuildLinearEquationSolver(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunLocal(g, Default())
	if err != nil {
		t.Fatal(err)
	}
	// The Residual_Norm exit task verifies the solve end to end.
	exits := g.Exits()
	if len(exits) != 1 {
		t.Fatalf("exits = %v", exits)
	}
	res := results[exits[0]][0].(float64)
	if res > 1e-7 {
		t.Fatalf("LES residual %g", res)
	}
	// The Matrix_Multiplication output is the solution vector.
	for _, task := range g.Tasks {
		if task.Name == "Matrix_Multiplication" {
			x := results[task.ID][0].([]float64)
			if len(x) != 24 {
				t.Fatalf("solution length %d", len(x))
			}
		}
	}
}

func TestBuildC3IPipeline(t *testing.T) {
	g, err := BuildC3IPipeline(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 6 {
		t.Fatalf("C3I has %d tasks", len(g.Tasks))
	}
	results, err := RunLocal(g, Default())
	if err != nil {
		t.Fatal(err)
	}
	exit := g.Exits()[0]
	report := results[exit][0].(string)
	if !strings.Contains(report, "C3I THREAT REPORT") {
		t.Fatalf("report = %q", report)
	}
	if _, err := BuildC3IPipeline(-1, 1); err == nil {
		t.Fatal("negative targets accepted")
	}
}

func TestRunLocalErrors(t *testing.T) {
	r := Default()
	// Unknown task name.
	g := afg.NewGraph("bad")
	g.AddTask("No_Such_Task", "x", 0, 1)
	if _, err := RunLocal(g, r); err == nil {
		t.Fatal("unknown task accepted")
	}
	// Task error propagates (LU of a singular matrix).
	g2 := afg.NewGraph("singular")
	gen := g2.AddTask("Matrix_Generate", "matrix", 0, 1)
	lu := g2.AddTask("LU_Decomposition", "matrix", 1, 1)
	_ = g2.SetProps(gen, afg.Properties{Args: map[string]string{"n": "4", "kind": "general", "seed": "1"}})
	if err := g2.Connect(gen, 0, lu, 0, 0); err != nil {
		t.Fatal(err)
	}
	// A general random matrix is almost surely nonsingular, so force the
	// failure through a type mismatch instead: feed LU a vector.
	g3 := afg.NewGraph("mismatch")
	vg := g3.AddTask("Vector_Generate", "matrix", 0, 1)
	lu3 := g3.AddTask("LU_Decomposition", "matrix", 1, 1)
	if err := g3.Connect(vg, 0, lu3, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLocal(g3, r); err == nil {
		t.Fatal("type mismatch accepted")
	}
	_ = linalg.Identity(1) // keep import for clarity of intent
}
