package tasklib

import (
	"fmt"

	"vdce/internal/linalg"
	"vdce/internal/repository"
)

// defaultN is the nominal problem size the static task-performance
// parameters are calibrated for. Actual inputs may be any size; the
// parameters exist so the scheduler can rank hosts, not to be exact.
const defaultN = 256

// registerMatrixLibrary adds the matrix-algebra library — the menu
// holding Fig. 1's LU_Decomposition and Matrix_Multiplication tasks.
func registerMatrixLibrary(reg func(Spec)) {
	nOps := float64(defaultN)

	reg(Spec{
		Name: "Matrix_Generate", Library: "matrix", InPorts: 0, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps * nOps,
			RequiredMemBytes: defaultN * defaultN * 8,
			BaseTime:         baseTimeFor(nOps * nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			n, err := c.IntArg("n", defaultN)
			if err != nil {
				return nil, err
			}
			seed, err := c.Int64Arg("seed", 1)
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("tasklib: Matrix_Generate n=%d", n)
			}
			if c.Args["kind"] == "general" {
				return []Value{linalg.RandomMatrix(n, n, seed)}, nil
			}
			return []Value{linalg.RandomDiagonallyDominant(n, seed)}, nil
		},
	})

	reg(Spec{
		Name: "Vector_Generate", Library: "matrix", InPorts: 0, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps,
			RequiredMemBytes: defaultN * 8,
			BaseTime:         baseTimeFor(nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			n, err := c.IntArg("n", defaultN)
			if err != nil {
				return nil, err
			}
			seed, err := c.Int64Arg("seed", 2)
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("tasklib: Vector_Generate n=%d", n)
			}
			return []Value{linalg.RandomVector(n, seed)}, nil
		},
	})

	reg(Spec{
		Name: "LU_Decomposition", Library: "matrix", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:     2.0 / 3.0 * nOps * nOps * nOps,
			CommunicationBytes: defaultN * defaultN * 8,
			RequiredMemBytes:   2 * defaultN * defaultN * 8,
			BaseTime:           baseTimeFor(2.0 / 3.0 * nOps * nOps * nOps),
			Parallelizable:     true,
			SerialFraction:     0.15,
		},
		Fn: func(c *Context) ([]Value, error) {
			a, err := c.Matrix(0)
			if err != nil {
				return nil, err
			}
			lu, err := linalg.Decompose(a)
			if err != nil {
				return nil, err
			}
			return []Value{&LUResult{L: lu.L, U: lu.U, Perm: lu.Perm, Swaps: lu.Swaps}}, nil
		},
	})

	reg(Spec{
		Name: "Cholesky_Decomposition", Library: "matrix", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:     1.0 / 3.0 * nOps * nOps * nOps,
			CommunicationBytes: defaultN * defaultN * 8,
			RequiredMemBytes:   2 * defaultN * defaultN * 8,
			BaseTime:           baseTimeFor(1.0 / 3.0 * nOps * nOps * nOps),
			Parallelizable:     true,
			SerialFraction:     0.15,
		},
		// Produces the lower factor L with A = L*Lt for SPD inputs.
		Fn: func(c *Context) ([]Value, error) {
			a, err := c.Matrix(0)
			if err != nil {
				return nil, err
			}
			l, err := linalg.Cholesky(a)
			if err != nil {
				return nil, err
			}
			return []Value{l}, nil
		},
	})

	reg(Spec{
		Name: "SPD_Generate", Library: "matrix", InPorts: 0, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   2 * nOps * nOps * nOps,
			RequiredMemBytes: 2 * defaultN * defaultN * 8,
			BaseTime:         baseTimeFor(2 * nOps * nOps * nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			n, err := c.IntArg("n", defaultN)
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("tasklib: SPD_Generate n=%d", n)
			}
			seed, err := c.Int64Arg("seed", 1)
			if err != nil {
				return nil, err
			}
			return []Value{linalg.RandomSPD(n, seed)}, nil
		},
	})

	reg(Spec{
		Name: "Forward_Substitution", Library: "matrix", InPorts: 2, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps * nOps,
			RequiredMemBytes: defaultN * defaultN * 8,
			BaseTime:         baseTimeFor(nOps * nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			luv, err := luInput(c, 0)
			if err != nil {
				return nil, err
			}
			b, err := c.Vector(1)
			if err != nil {
				return nil, err
			}
			if len(b) != len(luv.Perm) {
				return nil, fmt.Errorf("tasklib: Forward_Substitution b has %d entries for %d-row system", len(b), len(luv.Perm))
			}
			pb := make([]float64, len(b))
			for i, src := range luv.Perm {
				pb[i] = b[src]
			}
			y, err := linalg.ForwardSub(luv.L, pb)
			if err != nil {
				return nil, err
			}
			return []Value{y}, nil
		},
	})

	reg(Spec{
		Name: "Back_Substitution", Library: "matrix", InPorts: 2, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps * nOps,
			RequiredMemBytes: defaultN * defaultN * 8,
			BaseTime:         baseTimeFor(nOps * nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			luv, err := luInput(c, 0)
			if err != nil {
				return nil, err
			}
			y, err := c.Vector(1)
			if err != nil {
				return nil, err
			}
			x, err := linalg.BackSub(luv.U, y)
			if err != nil {
				return nil, err
			}
			return []Value{x}, nil
		},
	})

	reg(Spec{
		Name: "Matrix_Multiplication", Library: "matrix", InPorts: 2, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:     2 * nOps * nOps * nOps,
			CommunicationBytes: 2 * defaultN * defaultN * 8,
			RequiredMemBytes:   3 * defaultN * defaultN * 8,
			BaseTime:           baseTimeFor(2 * nOps * nOps * nOps),
			Parallelizable:     true,
			SerialFraction:     0.05,
		},
		// The second operand may be a vector (treated as n x 1, producing
		// a vector) — the form Fig. 1's LES uses to compute X = inv(A)*b.
		Fn: func(c *Context) ([]Value, error) {
			a, err := c.Matrix(0)
			if err != nil {
				return nil, err
			}
			if len(c.In) > 1 {
				if v, ok := c.In[1].([]float64); ok {
					y, err := linalg.MatVec(a, v)
					if err != nil {
						return nil, err
					}
					return []Value{y}, nil
				}
			}
			b, err := c.Matrix(1)
			if err != nil {
				return nil, err
			}
			var m *linalg.Matrix
			if c.Nodes > 1 {
				m, err = linalg.MatMulParallel(a, b, c.Nodes)
			} else {
				m, err = linalg.MatMul(a, b)
			}
			if err != nil {
				return nil, err
			}
			return []Value{m}, nil
		},
	})

	reg(Spec{
		Name: "Matrix_Inversion", Library: "matrix", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:     2 * nOps * nOps * nOps,
			CommunicationBytes: defaultN * defaultN * 8,
			RequiredMemBytes:   3 * defaultN * defaultN * 8,
			BaseTime:           baseTimeFor(2 * nOps * nOps * nOps),
			Parallelizable:     true,
			SerialFraction:     0.1,
		},
		// Inverts from a prior LU decomposition by solving n unit systems.
		Fn: func(c *Context) ([]Value, error) {
			lu, err := luInput(c, 0)
			if err != nil {
				return nil, err
			}
			n := lu.U.Rows
			inv := linalg.New(n, n)
			e := make([]float64, n)
			for col := 0; col < n; col++ {
				for i := range e {
					e[i] = 0
				}
				e[col] = 1
				pb := make([]float64, n)
				for i, src := range lu.Perm {
					pb[i] = e[src]
				}
				y, err := linalg.ForwardSub(lu.L, pb)
				if err != nil {
					return nil, err
				}
				x, err := linalg.BackSub(lu.U, y)
				if err != nil {
					return nil, err
				}
				for i := 0; i < n; i++ {
					inv.Set(i, col, x[i])
				}
			}
			return []Value{inv}, nil
		},
	})

	reg(Spec{
		Name: "Matrix_Vector_Multiply", Library: "matrix", InPorts: 2, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   2 * nOps * nOps,
			RequiredMemBytes: defaultN * defaultN * 8,
			BaseTime:         baseTimeFor(2 * nOps * nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			a, err := c.Matrix(0)
			if err != nil {
				return nil, err
			}
			x, err := c.Vector(1)
			if err != nil {
				return nil, err
			}
			y, err := linalg.MatVec(a, x)
			if err != nil {
				return nil, err
			}
			return []Value{y}, nil
		},
	})

	reg(Spec{
		Name: "Matrix_Add", Library: "matrix", InPorts: 2, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps * nOps,
			RequiredMemBytes: 3 * defaultN * defaultN * 8,
			BaseTime:         baseTimeFor(nOps * nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			a, err := c.Matrix(0)
			if err != nil {
				return nil, err
			}
			b, err := c.Matrix(1)
			if err != nil {
				return nil, err
			}
			s, err := linalg.Add(a, b)
			if err != nil {
				return nil, err
			}
			return []Value{s}, nil
		},
	})

	reg(Spec{
		Name: "Matrix_Transpose", Library: "matrix", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps * nOps,
			RequiredMemBytes: 2 * defaultN * defaultN * 8,
			BaseTime:         baseTimeFor(nOps * nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			a, err := c.Matrix(0)
			if err != nil {
				return nil, err
			}
			return []Value{a.Transpose()}, nil
		},
	})

	reg(Spec{
		Name: "Residual_Norm", Library: "matrix", InPorts: 3, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   2 * nOps * nOps,
			RequiredMemBytes: defaultN * defaultN * 8,
			BaseTime:         baseTimeFor(2 * nOps * nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			a, err := c.Matrix(0)
			if err != nil {
				return nil, err
			}
			x, err := c.Vector(1)
			if err != nil {
				return nil, err
			}
			b, err := c.Vector(2)
			if err != nil {
				return nil, err
			}
			res, err := linalg.Residual(a, x, b)
			if err != nil {
				return nil, err
			}
			return []Value{res}, nil
		},
	})
}

func luInput(c *Context, i int) (*LUResult, error) {
	if i < 0 || i >= len(c.In) {
		return nil, fmt.Errorf("tasklib: no input %d", i)
	}
	lu, ok := c.In[i].(*LUResult)
	if !ok {
		return nil, fmt.Errorf("tasklib: input %d is %T, want *LUResult", i, c.In[i])
	}
	return lu, nil
}
