package tasklib

import (
	"testing"

	"vdce/internal/linalg"
)

func run(t *testing.T, r *Registry, name string, c *Context) []Value {
	t.Helper()
	spec, err := r.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Fn(c)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(out) != spec.OutPorts {
		t.Fatalf("%s produced %d outputs, declared %d", name, len(out), spec.OutPorts)
	}
	return out
}

func TestMatrixGenerate(t *testing.T) {
	r := Default()
	out := run(t, r, "Matrix_Generate", &Context{Args: map[string]string{"n": "8", "seed": "3"}})
	m := out[0].(*linalg.Matrix)
	if m.Rows != 8 || m.Cols != 8 {
		t.Fatalf("generated %dx%d", m.Rows, m.Cols)
	}
	// Diagonally dominant by default: decomposable.
	if _, err := linalg.Decompose(m); err != nil {
		t.Fatalf("default matrix not decomposable: %v", err)
	}
	// kind=general produces a plain random matrix.
	out2 := run(t, r, "Matrix_Generate", &Context{Args: map[string]string{"n": "4", "kind": "general"}})
	if out2[0].(*linalg.Matrix).Rows != 4 {
		t.Fatal("general matrix wrong size")
	}
	// Bad args rejected.
	spec, _ := r.Get("Matrix_Generate")
	if _, err := spec.Fn(&Context{Args: map[string]string{"n": "0"}}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := spec.Fn(&Context{Args: map[string]string{"n": "zz"}}); err == nil {
		t.Fatal("bad n accepted")
	}
}

func TestLUPipelineSolves(t *testing.T) {
	r := Default()
	n := 16
	a := linalg.RandomDiagonallyDominant(n, 7)
	b := linalg.RandomVector(n, 8)

	luOut := run(t, r, "LU_Decomposition", &Context{In: []Value{a}})
	fw := run(t, r, "Forward_Substitution", &Context{In: []Value{luOut[0], b}})
	bk := run(t, r, "Back_Substitution", &Context{In: []Value{luOut[0], fw[0]}})
	x := bk[0].([]float64)

	res, err := linalg.Residual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("LU pipeline residual %g", res)
	}
	// Residual_Norm task agrees.
	rn := run(t, r, "Residual_Norm", &Context{In: []Value{a, x, b}})
	if rn[0].(float64) != res {
		t.Fatalf("Residual_Norm = %v, want %v", rn[0], res)
	}
}

func TestForwardSubValidatesLength(t *testing.T) {
	r := Default()
	a := linalg.RandomDiagonallyDominant(4, 1)
	luOut := run(t, r, "LU_Decomposition", &Context{In: []Value{a}})
	spec, _ := r.Get("Forward_Substitution")
	if _, err := spec.Fn(&Context{In: []Value{luOut[0], []float64{1, 2}}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := spec.Fn(&Context{In: []Value{"junk", []float64{1}}}); err == nil {
		t.Fatal("junk LU accepted")
	}
}

func TestMatrixInversion(t *testing.T) {
	r := Default()
	n := 10
	a := linalg.RandomDiagonallyDominant(n, 5)
	luOut := run(t, r, "LU_Decomposition", &Context{In: []Value{a}})
	invOut := run(t, r, "Matrix_Inversion", &Context{In: []Value{luOut[0]}})
	inv := invOut[0].(*linalg.Matrix)
	prod, err := linalg.MatMul(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(prod, linalg.Identity(n)); d > 1e-8 {
		t.Fatalf("A * inv(A) differs from I by %g", d)
	}
}

func TestMatrixMultiplicationBothForms(t *testing.T) {
	r := Default()
	a := linalg.RandomMatrix(6, 6, 1)
	b := linalg.RandomMatrix(6, 6, 2)
	// Matrix x matrix, sequential and parallel agree.
	seq := run(t, r, "Matrix_Multiplication", &Context{In: []Value{a, b}})
	par := run(t, r, "Matrix_Multiplication", &Context{In: []Value{a, b}, Nodes: 3})
	if d := linalg.MaxAbsDiff(seq[0].(*linalg.Matrix), par[0].(*linalg.Matrix)); d > 1e-12 {
		t.Fatalf("parallel/sequential differ by %g", d)
	}
	// Matrix x vector yields the MatVec result.
	v := linalg.RandomVector(6, 3)
	mv := run(t, r, "Matrix_Multiplication", &Context{In: []Value{a, v}})
	want, err := linalg.MatVec(a, v)
	if err != nil {
		t.Fatal(err)
	}
	got := mv[0].([]float64)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("matvec form wrong at %d", i)
		}
	}
}

func TestMatrixAddTransposeVecMul(t *testing.T) {
	r := Default()
	a := linalg.RandomMatrix(5, 5, 1)
	b := linalg.RandomMatrix(5, 5, 2)
	sum := run(t, r, "Matrix_Add", &Context{In: []Value{a, b}})
	want, _ := linalg.Add(a, b)
	if !linalg.Equalish(sum[0].(*linalg.Matrix), want, 0) {
		t.Fatal("Matrix_Add wrong")
	}
	tr := run(t, r, "Matrix_Transpose", &Context{In: []Value{a}})
	if !linalg.Equalish(tr[0].(*linalg.Matrix), a.Transpose(), 0) {
		t.Fatal("Matrix_Transpose wrong")
	}
	v := linalg.RandomVector(5, 3)
	mv := run(t, r, "Matrix_Vector_Multiply", &Context{In: []Value{a, v}})
	wv, _ := linalg.MatVec(a, v)
	gv := mv[0].([]float64)
	for i := range wv {
		if gv[i] != wv[i] {
			t.Fatal("Matrix_Vector_Multiply wrong")
		}
	}
}

func TestCholeskyTask(t *testing.T) {
	r := Default()
	spd := run(t, r, "SPD_Generate", &Context{Args: map[string]string{"n": "12", "seed": "4"}})
	l := run(t, r, "Cholesky_Decomposition", &Context{In: spd})
	prod, err := linalg.MatMul(l[0].(*linalg.Matrix), l[0].(*linalg.Matrix).Transpose())
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(spd[0].(*linalg.Matrix), prod); d > 1e-8 {
		t.Fatalf("A - LLt differs by %g", d)
	}
	// Non-SPD input errors out.
	spec, _ := r.Get("Cholesky_Decomposition")
	if _, err := spec.Fn(&Context{In: []Value{linalg.RandomMatrix(4, 4, 1)}}); err == nil {
		t.Fatal("non-SPD matrix accepted")
	}
	gspec, _ := r.Get("SPD_Generate")
	if _, err := gspec.Fn(&Context{Args: map[string]string{"n": "0"}}); err == nil {
		t.Fatal("n=0 accepted")
	}
}
