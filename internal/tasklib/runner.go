package tasklib

import (
	"fmt"

	"vdce/internal/afg"
)

// RunLocal executes an application flow graph synchronously in-process,
// in topological order, with no scheduling or data management. It is the
// reference executor: the distributed runtime must produce the same
// values. The result maps each task to its output values (one per output
// port).
func RunLocal(g *afg.Graph, reg *Registry) (map[afg.TaskID][]Value, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	results := make(map[afg.TaskID][]Value, len(g.Tasks))
	for _, id := range order {
		task := g.Task(id)
		spec, err := reg.Get(task.Name)
		if err != nil {
			return nil, fmt.Errorf("tasklib: task %d: %w", id, err)
		}
		in := make([]Value, task.InPorts)
		for _, e := range g.InEdges(id) {
			src, ok := results[e.From]
			if !ok || e.FromPort >= len(src) {
				return nil, fmt.Errorf("tasklib: task %d input %d not produced", id, e.ToPort)
			}
			in[e.ToPort] = src[e.FromPort]
		}
		nodes := task.Props.Nodes
		if task.Props.Mode != afg.Parallel {
			nodes = 1
		}
		out, err := spec.Fn(&Context{In: in, Args: task.Props.Args, Nodes: nodes})
		if err != nil {
			return nil, fmt.Errorf("tasklib: task %d (%s): %w", id, task.Name, err)
		}
		if len(out) != task.OutPorts {
			return nil, fmt.Errorf("tasklib: task %d (%s) produced %d outputs, declared %d", id, task.Name, len(out), task.OutPorts)
		}
		results[id] = out
	}
	return results, nil
}
