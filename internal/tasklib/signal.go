package tasklib

import (
	"encoding/gob"
	"fmt"

	"vdce/internal/dsp"
	"vdce/internal/repository"
)

func init() {
	gob.Register([]dsp.Peak(nil))
	gob.Register([]complex128(nil))
}

// registerSignalLibrary adds the signal-processing library: synthesize,
// filter, transform, and analyze 1-D signals — the radar/sonar flavor of
// workload the paper's C3I motivation implies.
func registerSignalLibrary(reg func(Spec)) {
	const nominalN = 4096
	nOps := float64(nominalN)

	reg(Spec{
		Name: "Signal_Generate", Library: "signal", InPorts: 0, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps * 10,
			RequiredMemBytes: nominalN * 8,
			BaseTime:         baseTimeFor(nOps * 10),
		},
		// Args: n (power of two), f1/a1, f2/a2 tone pairs, noise, seed.
		Fn: func(c *Context) ([]Value, error) {
			n, err := c.IntArg("n", nominalN)
			if err != nil {
				return nil, err
			}
			if !dsp.IsPowerOfTwo(n) {
				return nil, fmt.Errorf("tasklib: Signal_Generate n=%d not a power of two", n)
			}
			seed, err := c.Int64Arg("seed", 1)
			if err != nil {
				return nil, err
			}
			noise, err := c.FloatArg("noise", 0.1)
			if err != nil {
				return nil, err
			}
			var tones [][2]float64
			for i := 1; i <= 4; i++ {
				f, err := c.FloatArg(fmt.Sprintf("f%d", i), 0)
				if err != nil {
					return nil, err
				}
				a, err := c.FloatArg(fmt.Sprintf("a%d", i), 0)
				if err != nil {
					return nil, err
				}
				if f > 0 && a != 0 {
					tones = append(tones, [2]float64{f, a})
				}
			}
			if len(tones) == 0 {
				tones = [][2]float64{{float64(n) / 32, 1}}
			}
			return []Value{dsp.Synthesize(n, tones, noise, seed)}, nil
		},
	})

	reg(Spec{
		Name: "Lowpass_Filter", Library: "signal", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps * 63,
			RequiredMemBytes: 2 * nominalN * 8,
			BaseTime:         baseTimeFor(nOps * 63),
		},
		Fn: func(c *Context) ([]Value, error) {
			sig, err := c.Vector(0)
			if err != nil {
				return nil, err
			}
			taps, err := c.IntArg("taps", 63)
			if err != nil {
				return nil, err
			}
			cutoff, err := c.FloatArg("cutoff", 0.1)
			if err != nil {
				return nil, err
			}
			h, err := dsp.LowpassFIR(taps, cutoff)
			if err != nil {
				return nil, err
			}
			filtered := dsp.Convolve(sig, h)
			// Keep the original length (and power-of-two property) by
			// trimming the filter's group delay from both ends.
			delay := (taps - 1) / 2
			if len(filtered) >= len(sig)+2*delay-1 {
				filtered = filtered[delay : delay+len(sig)]
			}
			return []Value{filtered}, nil
		},
	})

	reg(Spec{
		Name: "Power_Spectrum", Library: "signal", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:     nOps * 12, // ~ n log n
			CommunicationBytes: nominalN * 8,
			RequiredMemBytes:   4 * nominalN * 8,
			BaseTime:           baseTimeFor(nOps * 12),
			Parallelizable:     true,
			SerialFraction:     0.3,
		},
		Fn: func(c *Context) ([]Value, error) {
			sig, err := c.Vector(0)
			if err != nil {
				return nil, err
			}
			ps, err := dsp.PowerSpectrum(sig)
			if err != nil {
				return nil, err
			}
			return []Value{ps}, nil
		},
	})

	reg(Spec{
		Name: "Peak_Detect", Library: "signal", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:   nOps,
			RequiredMemBytes: nominalN * 8,
			BaseTime:         baseTimeFor(nOps),
		},
		Fn: func(c *Context) ([]Value, error) {
			spec, err := c.Vector(0)
			if err != nil {
				return nil, err
			}
			thr, err := c.FloatArg("threshold", 1)
			if err != nil {
				return nil, err
			}
			return []Value{dsp.FindPeaks(spec, thr)}, nil
		},
	})
}
