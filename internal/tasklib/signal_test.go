package tasklib

import (
	"testing"

	"vdce/internal/dsp"
)

func TestSignalPipeline(t *testing.T) {
	r := Default()
	// Generate a two-tone signal, filter out the high tone, find the low
	// peak in the spectrum.
	sig := run(t, r, "Signal_Generate", &Context{Args: map[string]string{
		"n": "1024", "f1": "16", "a1": "2", "f2": "400", "a2": "1", "noise": "0.01", "seed": "5",
	}})[0]
	filtered := run(t, r, "Lowpass_Filter", &Context{In: []Value{sig},
		Args: map[string]string{"taps": "63", "cutoff": "0.05"}})[0]
	if len(filtered.([]float64)) != 1024 {
		t.Fatalf("filter changed length to %d", len(filtered.([]float64)))
	}
	ps := run(t, r, "Power_Spectrum", &Context{In: []Value{filtered}})[0]
	peaks := run(t, r, "Peak_Detect", &Context{In: []Value{ps},
		Args: map[string]string{"threshold": "10"}})[0].([]dsp.Peak)
	if len(peaks) == 0 {
		t.Fatal("no peaks found")
	}
	if peaks[0].Bin < 14 || peaks[0].Bin > 18 {
		t.Fatalf("dominant peak at bin %d, want ~16", peaks[0].Bin)
	}
	// The 400-cycle tone must have been attenuated out of the peak list.
	for _, p := range peaks {
		if p.Bin > 380 && p.Bin < 420 {
			t.Fatalf("high tone survived the filter: %+v", p)
		}
	}
}

func TestSignalGenerateValidation(t *testing.T) {
	r := Default()
	spec, _ := r.Get("Signal_Generate")
	if _, err := spec.Fn(&Context{Args: map[string]string{"n": "1000"}}); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := spec.Fn(&Context{Args: map[string]string{"n": "64", "f1": "zz"}}); err == nil {
		t.Fatal("bad tone arg accepted")
	}
	// Defaults produce a signal.
	out, err := spec.Fn(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0].([]float64)) != 4096 {
		t.Fatal("default signal wrong size")
	}
}

func TestSignalTypeErrors(t *testing.T) {
	r := Default()
	for _, name := range []string{"Lowpass_Filter", "Power_Spectrum", "Peak_Detect"} {
		spec, _ := r.Get(name)
		if _, err := spec.Fn(&Context{In: []Value{"junk"}}); err == nil {
			t.Errorf("%s accepted junk input", name)
		}
	}
	// Power_Spectrum propagates FFT length errors.
	spec, _ := r.Get("Power_Spectrum")
	if _, err := spec.Fn(&Context{In: []Value{make([]float64, 100)}}); err == nil {
		t.Fatal("non-power-of-two spectrum accepted")
	}
}

func TestSignalValuesRoundTripGob(t *testing.T) {
	peaks := []dsp.Peak{{Bin: 3, Power: 1.5}}
	data, err := EncodeValue(peaks)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeValue(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.([]dsp.Peak)
	if len(got) != 1 || got[0] != peaks[0] {
		t.Fatalf("round trip = %v", got)
	}
}
