// Package tasklib implements the VDCE task libraries: the menu-driven,
// functionally grouped catalogs of executable tasks the Application
// Editor exposes (the paper names the matrix-algebra library and the C3I
// command-and-control library). Every entry couples a real Go
// implementation with the task-performance parameters the scheduler's
// prediction phase needs and the executable locations the
// task-constraints database records.
package tasklib

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"time"

	"vdce/internal/linalg"
	"vdce/internal/repository"
)

// Value is one unit of inter-task data: whatever flows along an AFG edge.
// Concrete types are gob-registered so the Data Manager can move values
// across TCP channels.
type Value any

func init() {
	gob.Register(&linalg.Matrix{})
	gob.Register(&LUResult{})
	gob.Register([]float64(nil))
	gob.Register([]Track(nil))
	gob.Register([]Threat(nil))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register([]byte(nil))
}

// LUResult carries an LU decomposition between tasks.
type LUResult struct {
	L, U  *linalg.Matrix
	Perm  []int
	Swaps int
}

// EncodeValue gob-encodes a Value for transport.
func EncodeValue(v Value) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("tasklib: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeValue reverses EncodeValue.
func DecodeValue(data []byte) (Value, error) {
	var v Value
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return nil, fmt.Errorf("tasklib: decode: %w", err)
	}
	return v, nil
}

// Context is what a running task sees: its inputs (one per input port),
// its argument map from the task properties, and the node count granted
// by the scheduler for parallel tasks.
type Context struct {
	In    []Value
	Args  map[string]string
	Nodes int
}

// IntArg returns the named integer argument or def if absent.
func (c *Context) IntArg(name string, def int) (int, error) {
	s, ok := c.Args[name]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("tasklib: arg %q: %w", name, err)
	}
	return v, nil
}

// Int64Arg returns the named int64 argument or def if absent.
func (c *Context) Int64Arg(name string, def int64) (int64, error) {
	s, ok := c.Args[name]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("tasklib: arg %q: %w", name, err)
	}
	return v, nil
}

// FloatArg returns the named float argument or def if absent.
func (c *Context) FloatArg(name string, def float64) (float64, error) {
	s, ok := c.Args[name]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("tasklib: arg %q: %w", name, err)
	}
	return v, nil
}

// Matrix extracts input port i as a matrix.
func (c *Context) Matrix(i int) (*linalg.Matrix, error) {
	if i < 0 || i >= len(c.In) {
		return nil, fmt.Errorf("tasklib: no input %d", i)
	}
	m, ok := c.In[i].(*linalg.Matrix)
	if !ok {
		return nil, fmt.Errorf("tasklib: input %d is %T, want *linalg.Matrix", i, c.In[i])
	}
	return m, nil
}

// Vector extracts input port i as a vector.
func (c *Context) Vector(i int) ([]float64, error) {
	if i < 0 || i >= len(c.In) {
		return nil, fmt.Errorf("tasklib: no input %d", i)
	}
	v, ok := c.In[i].([]float64)
	if !ok {
		return nil, fmt.Errorf("tasklib: input %d is %T, want []float64", i, c.In[i])
	}
	return v, nil
}

// Func is a task implementation: it consumes a Context and produces one
// Value per output port.
type Func func(*Context) ([]Value, error)

// Spec is one catalog entry.
type Spec struct {
	Name     string
	Library  string
	InPorts  int
	OutPorts int
	// Params feed the task-performance database (computation size,
	// communication size, memory, base time, parallelizability).
	Params repository.TaskParams
	Fn     Func
}

// Registry is a task catalog grouped by library, mirroring the editor's
// menu-driven task libraries.
type Registry struct {
	specs map[string]*Spec
}

// NewRegistry returns an empty catalog.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]*Spec)}
}

// Register adds a spec; names are global across libraries, as in the
// paper's task-performance database.
func (r *Registry) Register(s Spec) error {
	if s.Name == "" || s.Fn == nil {
		return fmt.Errorf("tasklib: spec needs name and function")
	}
	if s.InPorts < 0 || s.OutPorts < 1 {
		return fmt.Errorf("tasklib: spec %s has bad port counts %d/%d", s.Name, s.InPorts, s.OutPorts)
	}
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("tasklib: duplicate task %s", s.Name)
	}
	if s.Params.Name == "" {
		s.Params.Name = s.Name
	}
	c := s
	r.specs[s.Name] = &c
	return nil
}

// Get returns the named spec.
func (r *Registry) Get(name string) (*Spec, error) {
	s, ok := r.specs[name]
	if !ok {
		return nil, fmt.Errorf("tasklib: unknown task %q", name)
	}
	return s, nil
}

// Libraries returns the distinct library names, sorted — the editor's
// top-level menu.
func (r *Registry) Libraries() []string {
	set := make(map[string]bool)
	for _, s := range r.specs {
		set[s.Library] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Names returns the task names in one library, sorted — one editor menu.
func (r *Registry) Names(library string) []string {
	var out []string
	for _, s := range r.specs {
		if s.Library == library {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// All returns every task name, sorted.
func (r *Registry) All() []string {
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// InstallInto populates a site repository with this catalog: task
// parameters into the task-performance database and executable locations
// (under /opt/vdce/tasks) into the task-constraints database for every
// listed host.
func (r *Registry) InstallInto(repo *repository.Repository, hosts []string) error {
	for _, name := range r.All() {
		s := r.specs[name]
		if err := repo.TaskPerf.RegisterTask(s.Params); err != nil {
			return err
		}
		path := "/opt/vdce/tasks/" + s.Name
		for _, h := range hosts {
			if err := repo.Constraints.SetLocation(s.Name, h, path); err != nil {
				return err
			}
		}
	}
	return nil
}

// baseTimeFor derives a BaseTime consistent with the default predictor's
// 100 Mops base processor.
func baseTimeFor(ops float64) time.Duration {
	return time.Duration(ops / 100e6 * float64(time.Second))
}

// Default returns the full catalog: matrix algebra, C3I, and utility
// libraries.
func Default() *Registry {
	r := NewRegistry()
	mustRegister := func(s Spec) {
		if err := r.Register(s); err != nil {
			panic(err) // static catalog; failure is a programming error
		}
	}
	registerMatrixLibrary(mustRegister)
	registerC3ILibrary(mustRegister)
	registerSignalLibrary(mustRegister)
	registerUtilLibrary(mustRegister)
	return r
}
