package tasklib

import (
	"strings"
	"testing"

	"vdce/internal/linalg"
	"vdce/internal/repository"
)

func TestDefaultCatalog(t *testing.T) {
	r := Default()
	libs := r.Libraries()
	if len(libs) != 4 || libs[0] != "c3i" || libs[1] != "matrix" || libs[2] != "signal" || libs[3] != "util" {
		t.Fatalf("Libraries = %v", libs)
	}
	for _, name := range []string{"LU_Decomposition", "Matrix_Multiplication", "Sensor_Feed", "Pass_Through"} {
		if _, err := r.Get(name); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("unknown task accepted")
	}
	if got := r.Names("matrix"); len(got) < 8 {
		t.Fatalf("matrix library too small: %v", got)
	}
	// Every spec must have positive base time for level computation.
	for _, name := range r.All() {
		s, _ := r.Get(name)
		if s.Params.BaseTime <= 0 {
			t.Errorf("%s has no base time", name)
		}
		if s.Params.Name != name {
			t.Errorf("%s params name mismatch: %s", name, s.Params.Name)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Spec{Name: "", Fn: func(*Context) ([]Value, error) { return nil, nil }}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register(Spec{Name: "x", Fn: nil, OutPorts: 1}); err == nil {
		t.Fatal("nil fn accepted")
	}
	if err := r.Register(Spec{Name: "x", OutPorts: 0, Fn: func(*Context) ([]Value, error) { return nil, nil }}); err == nil {
		t.Fatal("zero out ports accepted")
	}
	ok := Spec{Name: "x", OutPorts: 1, Fn: func(*Context) ([]Value, error) { return []Value{1.0}, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestContextArgHelpers(t *testing.T) {
	c := &Context{Args: map[string]string{"n": "12", "big": "123456789012", "f": "0.25", "bad": "xx"}}
	if v, err := c.IntArg("n", 5); err != nil || v != 12 {
		t.Fatalf("IntArg: %d %v", v, err)
	}
	if v, err := c.IntArg("missing", 5); err != nil || v != 5 {
		t.Fatalf("IntArg default: %d %v", v, err)
	}
	if _, err := c.IntArg("bad", 5); err == nil {
		t.Fatal("bad int accepted")
	}
	if v, err := c.Int64Arg("big", 0); err != nil || v != 123456789012 {
		t.Fatalf("Int64Arg: %d %v", v, err)
	}
	if _, err := c.Int64Arg("bad", 0); err == nil {
		t.Fatal("bad int64 accepted")
	}
	if v, err := c.FloatArg("f", 0); err != nil || v != 0.25 {
		t.Fatalf("FloatArg: %g %v", v, err)
	}
	if _, err := c.FloatArg("bad", 0); err == nil {
		t.Fatal("bad float accepted")
	}
	// Typed input extraction errors.
	c2 := &Context{In: []Value{"str"}}
	if _, err := c2.Matrix(0); err == nil {
		t.Fatal("string accepted as matrix")
	}
	if _, err := c2.Vector(0); err == nil {
		t.Fatal("string accepted as vector")
	}
	if _, err := c2.Matrix(5); err == nil {
		t.Fatal("out-of-range input accepted")
	}
}

func TestEncodeDecodeValue(t *testing.T) {
	vals := []Value{
		linalg.Identity(3),
		[]float64{1, 2, 3},
		[]Track{{ID: 1, X: 2, Class: "hostile"}},
		[]Threat{{TrackID: 1, Score: 9.5, Reason: "r"}},
		3.14,
		"hello",
		&LUResult{L: linalg.Identity(2), U: linalg.Identity(2), Perm: []int{0, 1}},
	}
	for i, v := range vals {
		data, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		back, err := DecodeValue(data)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		switch want := v.(type) {
		case *linalg.Matrix:
			got, ok := back.(*linalg.Matrix)
			if !ok || !linalg.Equalish(want, got, 0) {
				t.Fatalf("case %d matrix mismatch", i)
			}
		case []float64:
			got, ok := back.([]float64)
			if !ok || len(got) != len(want) {
				t.Fatalf("case %d vector mismatch", i)
			}
		case float64:
			if back.(float64) != want {
				t.Fatalf("case %d float mismatch", i)
			}
		case string:
			if back.(string) != want {
				t.Fatalf("case %d string mismatch", i)
			}
		}
	}
	if _, err := DecodeValue([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}

func TestInstallInto(t *testing.T) {
	r := Default()
	repo := repository.New("s1")
	hosts := []string{"h1", "h2"}
	if err := r.InstallInto(repo, hosts); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.TaskPerf.Params("LU_Decomposition"); err != nil {
		t.Fatalf("params not installed: %v", err)
	}
	p, err := repo.Constraints.Location("Matrix_Multiplication", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(p, "/opt/vdce/tasks/") {
		t.Fatalf("location = %q", p)
	}
}
