package tasklib

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"vdce/internal/repository"
)

// registerUtilLibrary adds small structural tasks used by tests,
// benchmarks, and synthetic workloads.
func registerUtilLibrary(reg func(Spec)) {
	reg(Spec{
		Name: "Pass_Through", Library: "util", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps: 1000,
			BaseTime:       baseTimeFor(1000),
		},
		Fn: func(c *Context) ([]Value, error) {
			if len(c.In) < 1 {
				return nil, fmt.Errorf("tasklib: Pass_Through needs an input")
			}
			return []Value{c.In[0]}, nil
		},
	})

	reg(Spec{
		Name: "Spin", Library: "util", InPorts: 0, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps: 1e6,
			BaseTime:       baseTimeFor(1e6),
		},
		// Spin busy-works for roughly ms_arg of base-processor time and
		// outputs the iteration count. Used to generate measurable load.
		Fn: func(c *Context) ([]Value, error) {
			ms, err := c.IntArg("ms", 1)
			if err != nil {
				return nil, err
			}
			deadline := time.Now().Add(time.Duration(ms) * time.Millisecond)
			var iters float64
			for time.Now().Before(deadline) {
				for i := 0; i < 1000; i++ {
					iters++
				}
			}
			return []Value{iters}, nil
		},
	})

	reg(Spec{
		Name: "Checksum", Library: "util", InPorts: 1, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps: 1e5,
			BaseTime:       baseTimeFor(1e5),
		},
		Fn: func(c *Context) ([]Value, error) {
			if len(c.In) < 1 {
				return nil, fmt.Errorf("tasklib: Checksum needs an input")
			}
			data, err := EncodeValue(c.In[0])
			if err != nil {
				return nil, err
			}
			sum := sha256.Sum256(data)
			return []Value{hex.EncodeToString(sum[:])}, nil
		},
	})

	reg(Spec{
		Name: "Synthetic_Work", Library: "util", InPorts: 2, OutPorts: 1,
		Params: repository.TaskParams{
			ComputationOps:     5e6,
			CommunicationBytes: 1 << 16,
			RequiredMemBytes:   1 << 20,
			BaseTime:           baseTimeFor(5e6),
			Parallelizable:     true,
			SerialFraction:     0.25,
		},
		// Synthetic_Work tolerates missing inputs so workload generators
		// can wire arbitrary DAG shapes over it; it emits a deterministic
		// function of its inputs.
		Fn: func(c *Context) ([]Value, error) {
			var acc float64 = 1
			for _, v := range c.In {
				if f, ok := v.(float64); ok {
					acc += f
				}
			}
			reps, err := c.IntArg("reps", 1000)
			if err != nil {
				return nil, err
			}
			for i := 0; i < reps; i++ {
				acc = acc*1.0000001 + 0.5
			}
			return []Value{acc}, nil
		},
	})
}
