// Package testbed fabricates the hardware the paper ran on — campus-wide
// heterogeneous workstations organized into sites and groups — as
// deterministic software models. Host models expose exactly the signals
// the VDCE runtime consumes: sampled CPU load and available memory for
// Monitor daemons, echo reachability for Group Manager failure detection,
// and a time-dilation factor the executor uses to emulate heterogeneous
// speeds when running real task code.
package testbed

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"vdce/internal/repository"
)

// Host is the simulated hardware model behind one VDCE resource.
type Host struct {
	// Static identity (never changes after Build).
	Name     string
	IP       string
	Arch     string
	OS       string
	Site     string
	Group    string
	Speed    float64 // relative to base processor
	TotalMem int64

	mu       sync.Mutex
	load     float64 // background CPU load random walk in [0, maxLoad]
	injected float64 // contention injected by experiments (E7)
	sigma    float64
	maxLoad  float64
	usedMem  int64 // memory claimed by running VDCE tasks
	failed   bool
	// partitioned models a network cut: the host keeps computing, but
	// monitor samples and echo packets no longer get through. Only the
	// failure detector (heartbeat silence) can notice a partition.
	partitioned bool
	rng         *rand.Rand
}

// Info renders the host as the ResourceInfo record its site's
// resource-performance database holds.
func (h *Host) Info() repository.ResourceInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	status := repository.HostUp
	if h.failed {
		status = repository.HostDown
	}
	return repository.ResourceInfo{
		HostName:    h.Name,
		IPAddress:   h.IP,
		ArchType:    h.Arch,
		OSType:      h.OS,
		TotalMem:    h.TotalMem,
		AvailMem:    h.TotalMem - h.usedMem,
		Site:        h.Site,
		Group:       h.Group,
		SpeedFactor: h.Speed,
		Status:      status,
		CPULoad:     h.effectiveLoadLocked(),
	}
}

func (h *Host) effectiveLoadLocked() float64 {
	l := h.load + h.injected
	if l > 0.99 {
		l = 0.99
	}
	if l < 0 {
		l = 0
	}
	return l
}

// Sample advances the background-load random walk one step and returns a
// monitor measurement stamped with now. This is what the Monitor daemon
// "measures" each period.
func (h *Host) Sample(now time.Time) repository.WorkloadSample {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Reflected random walk keeps load inside [0, maxLoad].
	h.load += h.rng.NormFloat64() * h.sigma
	if h.load < 0 {
		h.load = -h.load
	}
	if h.load > h.maxLoad {
		h.load = 2*h.maxLoad - h.load
	}
	if h.load < 0 {
		h.load = 0
	}
	return repository.WorkloadSample{
		CPULoad:       h.effectiveLoadLocked(),
		AvailMemBytes: h.TotalMem - h.usedMem,
		Time:          now,
	}
}

// CurrentLoad returns the instantaneous effective CPU load.
func (h *Host) CurrentLoad() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.effectiveLoadLocked()
}

// InjectLoad adds (or with a negative delta removes) contention on the
// host, clamped to [0, 0.99]. Experiments use this to trigger the
// Application Controller's rescheduling threshold.
func (h *Host) InjectLoad(delta float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.injected += delta
	if h.injected < 0 {
		h.injected = 0
	}
	if h.injected > 0.99 {
		h.injected = 0.99
	}
}

// Fail makes the host unreachable: echo fails and load samples stop.
func (h *Host) Fail() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failed = true
}

// Recover brings a failed host back.
func (h *Host) Recover() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failed = false
}

// Failed reports whether the host is currently failed (crashed). A
// merely partitioned host is NOT failed: its local execution continues.
func (h *Host) Failed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.failed
}

// Partition cuts the host off the network: monitor samples and echo
// packets stop, but the machine itself keeps running. Tasks on a
// partitioned host are interrupted only when the failure detector
// confirms the silence — the end-to-end path a crash short-circuits.
func (h *Host) Partition() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partitioned = true
}

// Heal reconnects a partitioned host.
func (h *Host) Heal() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partitioned = false
}

// Partitioned reports whether the host is currently cut off.
func (h *Host) Partitioned() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.partitioned
}

// Reachable reports whether monitoring traffic (samples, echoes) gets
// through: the host is neither failed nor partitioned.
func (h *Host) Reachable() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.failed && !h.partitioned
}

// Echo models the Group Manager's echo packet: it returns an error when
// the host is unreachable (crashed or partitioned) and nil otherwise.
func (h *Host) Echo() error {
	if !h.Reachable() {
		return fmt.Errorf("testbed: host %s unreachable", h.Name)
	}
	return nil
}

// ErrNoMemory is returned when a task claims more memory than available.
var ErrNoMemory = errors.New("testbed: insufficient memory")

// ClaimMem reserves memory for a starting task.
func (h *Host) ClaimMem(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("testbed: negative memory claim %d", bytes)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.usedMem+bytes > h.TotalMem {
		return fmt.Errorf("%w: want %d, have %d on %s", ErrNoMemory, bytes, h.TotalMem-h.usedMem, h.Name)
	}
	h.usedMem += bytes
	return nil
}

// ReleaseMem returns memory when a task finishes. Releasing more than
// claimed clamps to zero.
func (h *Host) ReleaseMem(bytes int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.usedMem -= bytes
	if h.usedMem < 0 {
		h.usedMem = 0
	}
}

// Dilation returns the factor by which this host stretches the base
// processor's execution time right now: 1/(speed * (1-load)). The task
// executor multiplies real kernel durations by this to emulate running on
// slower or loaded hardware.
func (h *Host) Dilation() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return 1 / (h.Speed * (1 - h.effectiveLoadLocked()))
}
