package testbed

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"vdce/internal/netmodel"
	"vdce/internal/repository"
)

// Site is one VDCE site: a repository plus the simulated hosts behind it,
// organized into groups each led by a Group Manager.
type Site struct {
	Name  string
	Repo  *repository.Repository
	Hosts []*Host
}

// GroupNames returns the distinct group names of the site in order.
func (s *Site) GroupNames() []string {
	var out []string
	seen := make(map[string]bool)
	for _, h := range s.Hosts {
		if !seen[h.Group] {
			seen[h.Group] = true
			out = append(out, h.Group)
		}
	}
	return out
}

// HostNames returns the site's host names in order — the shape chaos
// scenarios and detector registrations consume.
func (s *Site) HostNames() []string {
	out := make([]string, len(s.Hosts))
	for i, h := range s.Hosts {
		out[i] = h.Name
	}
	return out
}

// GroupHosts returns the hosts of one group in order.
func (s *Site) GroupHosts(group string) []*Host {
	var out []*Host
	for _, h := range s.Hosts {
		if h.Group == group {
			out = append(out, h)
		}
	}
	return out
}

// Testbed is the fabricated wide-area system: sites, their hosts, and the
// network joining them.
type Testbed struct {
	Sites []*Site
	Net   *netmodel.Network

	byName map[string]*Host
}

// Config parameterizes Build. Zero fields take the listed defaults.
type Config struct {
	Sites         int     // default 2
	GroupsPerSite int     // default 1
	HostsPerGroup int     // default 4
	Seed          int64   // default 1
	SpeedMin      float64 // default 0.5
	SpeedMax      float64 // default 4.0
	MemMin        int64   // default 64 MiB
	MemMax        int64   // default 512 MiB
	BaseLoadMax   float64 // default 0.6: ceiling of the background-load walk
	LoadSigma     float64 // default 0.05: walk step stddev
	// ArchOS lists the machine types to draw from; default mixes the
	// paper-era platforms.
	ArchOS [][2]string
}

func (c *Config) fillDefaults() {
	if c.Sites <= 0 {
		c.Sites = 2
	}
	if c.GroupsPerSite <= 0 {
		c.GroupsPerSite = 1
	}
	if c.HostsPerGroup <= 0 {
		c.HostsPerGroup = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SpeedMin <= 0 {
		c.SpeedMin = 0.5
	}
	if c.SpeedMax < c.SpeedMin {
		c.SpeedMax = 4.0
	}
	if c.MemMin <= 0 {
		c.MemMin = 64 << 20
	}
	if c.MemMax < c.MemMin {
		c.MemMax = 512 << 20
	}
	if c.BaseLoadMax <= 0 {
		c.BaseLoadMax = 0.6
	}
	if c.LoadSigma <= 0 {
		c.LoadSigma = 0.05
	}
	if len(c.ArchOS) == 0 {
		c.ArchOS = [][2]string{
			{"SUN", "Solaris"},
			{"SUN", "SunOS"},
			{"SGI", "IRIX"},
			{"DEC", "OSF1"},
			{"Intel", "Linux"},
		}
	}
}

// Build fabricates a testbed from cfg, deterministically from cfg.Seed.
// Every site's resource-performance database is pre-populated with that
// site's hosts.
func Build(cfg Config) (*Testbed, error) {
	cfg.fillDefaults()
	if cfg.BaseLoadMax >= 1 {
		return nil, errors.New("testbed: BaseLoadMax must be < 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	siteNames := make([]string, cfg.Sites)
	for i := range siteNames {
		siteNames[i] = fmt.Sprintf("site%d", i)
	}
	net, err := netmodel.New(siteNames)
	if err != nil {
		return nil, err
	}
	tb := &Testbed{Net: net, byName: make(map[string]*Host)}
	for si, sname := range siteNames {
		site := &Site{Name: sname, Repo: repository.New(sname)}
		for gi := 0; gi < cfg.GroupsPerSite; gi++ {
			gname := fmt.Sprintf("%s-g%d", sname, gi)
			for hi := 0; hi < cfg.HostsPerGroup; hi++ {
				archos := cfg.ArchOS[rng.Intn(len(cfg.ArchOS))]
				mem := cfg.MemMin
				if cfg.MemMax > cfg.MemMin {
					mem += rng.Int63n(cfg.MemMax - cfg.MemMin)
				}
				h := &Host{
					Name:     fmt.Sprintf("h%d-%d-%d.%s.vdce.edu", si, gi, hi, sname),
					IP:       fmt.Sprintf("10.%d.%d.%d", si, gi, hi+1),
					Arch:     archos[0],
					OS:       archos[1],
					Site:     sname,
					Group:    gname,
					Speed:    cfg.SpeedMin + rng.Float64()*(cfg.SpeedMax-cfg.SpeedMin),
					TotalMem: mem,
					sigma:    cfg.LoadSigma,
					maxLoad:  cfg.BaseLoadMax,
					rng:      rand.New(rand.NewSource(cfg.Seed + int64(si*10000+gi*100+hi))),
				}
				// Start the walk somewhere inside its range.
				h.load = h.rng.Float64() * cfg.BaseLoadMax / 2
				site.Hosts = append(site.Hosts, h)
				tb.byName[h.Name] = h
				if err := site.Repo.Resources.AddHost(h.Info()); err != nil {
					return nil, err
				}
			}
		}
		tb.Sites = append(tb.Sites, site)
	}
	return tb, nil
}

// Host returns the named host model.
func (tb *Testbed) Host(name string) (*Host, error) {
	h, ok := tb.byName[name]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown host %q", name)
	}
	return h, nil
}

// Site returns the named site.
func (tb *Testbed) Site(name string) (*Site, error) {
	for _, s := range tb.Sites {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("testbed: unknown site %q", name)
}

// AllHosts returns every host across all sites in site order.
func (tb *Testbed) AllHosts() []*Host {
	var out []*Host
	for _, s := range tb.Sites {
		out = append(out, s.Hosts...)
	}
	return out
}

// HostNames returns every host name across all sites in site order.
func (tb *Testbed) HostNames() []string {
	var out []string
	for _, s := range tb.Sites {
		out = append(out, s.HostNames()...)
	}
	return out
}

// RefreshRepos re-samples every reachable host once at the given time and
// writes the measurements into the owning site's resource DB — a
// synchronous stand-in for one full monitor round *plus* its detection
// outcome (unreachable hosts are marked down immediately), used by tests
// and schedulers that want fresh load data without running the daemons.
func (tb *Testbed) RefreshRepos(now time.Time) error {
	for _, s := range tb.Sites {
		// Batch the whole site's round into one epoch publish: schedulers
		// see either the pre-round or post-round catalog, never a torn
		// mixture, and the ranked-host caches invalidate once per round.
		updates := make([]repository.RoundUpdate, 0, len(s.Hosts))
		for _, h := range s.Hosts {
			if !h.Reachable() {
				updates = append(updates, repository.RoundUpdate{Host: h.Name, Status: repository.HostDown})
				continue
			}
			sample := h.Sample(now)
			updates = append(updates, repository.RoundUpdate{
				Host: h.Name, Status: repository.HostUp, Sample: &sample,
			})
		}
		if _, err := s.Repo.Resources.ApplyRound(updates); err != nil {
			return err
		}
	}
	return nil
}
