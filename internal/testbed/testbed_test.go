package testbed

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"vdce/internal/repository"
)

func build(t *testing.T, cfg Config) *Testbed {
	t.Helper()
	tb, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestBuildDefaults(t *testing.T) {
	tb := build(t, Config{})
	if len(tb.Sites) != 2 {
		t.Fatalf("sites = %d", len(tb.Sites))
	}
	for _, s := range tb.Sites {
		if len(s.Hosts) != 4 {
			t.Fatalf("site %s hosts = %d", s.Name, len(s.Hosts))
		}
		// Repo pre-populated.
		if got := len(s.Repo.Resources.Hosts()); got != 4 {
			t.Fatalf("site %s repo hosts = %d", s.Name, got)
		}
		for _, h := range s.Hosts {
			if h.Speed < 0.5 || h.Speed > 4.0 {
				t.Fatalf("host speed %g out of range", h.Speed)
			}
			if h.TotalMem < 64<<20 || h.TotalMem > 512<<20 {
				t.Fatalf("host mem %d out of range", h.TotalMem)
			}
			if !strings.Contains(h.Name, s.Name) {
				t.Fatalf("host name %q missing site", h.Name)
			}
		}
	}
	if !tb.Net.Has("site0") || !tb.Net.Has("site1") {
		t.Fatal("network missing sites")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := build(t, Config{Seed: 42, Sites: 3, GroupsPerSite: 2, HostsPerGroup: 3})
	b := build(t, Config{Seed: 42, Sites: 3, GroupsPerSite: 2, HostsPerGroup: 3})
	ha, hb := a.AllHosts(), b.AllHosts()
	if len(ha) != 18 || len(hb) != 18 {
		t.Fatalf("host counts %d %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].Name != hb[i].Name || ha[i].Speed != hb[i].Speed || ha[i].TotalMem != hb[i].TotalMem {
			t.Fatalf("host %d differs between equal-seed builds", i)
		}
	}
}

func TestBuildRejectsBadLoadMax(t *testing.T) {
	if _, err := Build(Config{BaseLoadMax: 1.5}); err == nil {
		t.Fatal("BaseLoadMax >= 1 accepted")
	}
}

func TestLookups(t *testing.T) {
	tb := build(t, Config{})
	h := tb.Sites[0].Hosts[0]
	got, err := tb.Host(h.Name)
	if err != nil || got != h {
		t.Fatalf("Host lookup: %v %v", got, err)
	}
	if _, err := tb.Host("nope"); err == nil {
		t.Fatal("unknown host accepted")
	}
	s, err := tb.Site("site1")
	if err != nil || s.Name != "site1" {
		t.Fatalf("Site lookup: %v %v", s, err)
	}
	if _, err := tb.Site("nope"); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestGroups(t *testing.T) {
	tb := build(t, Config{Sites: 1, GroupsPerSite: 3, HostsPerGroup: 2})
	s := tb.Sites[0]
	gs := s.GroupNames()
	if len(gs) != 3 {
		t.Fatalf("groups = %v", gs)
	}
	for _, g := range gs {
		if hosts := s.GroupHosts(g); len(hosts) != 2 {
			t.Fatalf("group %s hosts = %d", g, len(hosts))
		}
	}
	if hosts := s.GroupHosts("missing"); len(hosts) != 0 {
		t.Fatal("phantom group has hosts")
	}
}

func TestSampleWalkStaysBounded(t *testing.T) {
	tb := build(t, Config{Seed: 5, BaseLoadMax: 0.6})
	h := tb.Sites[0].Hosts[0]
	for i := 0; i < 1000; i++ {
		s := h.Sample(time.Unix(int64(i), 0))
		if s.CPULoad < 0 || s.CPULoad > 0.99 {
			t.Fatalf("sample %d load %g out of bounds", i, s.CPULoad)
		}
	}
}

func TestInjectLoadAndDilation(t *testing.T) {
	tb := build(t, Config{Seed: 5})
	h := tb.Sites[0].Hosts[0]
	before := h.CurrentLoad()
	h.InjectLoad(0.3)
	after := h.CurrentLoad()
	if after <= before && after < 0.99 {
		t.Fatalf("InjectLoad did nothing: %g -> %g", before, after)
	}
	d1 := h.Dilation()
	h.InjectLoad(0.3)
	d2 := h.Dilation()
	if d2 <= d1 {
		t.Fatalf("more load should dilate more: %g -> %g", d1, d2)
	}
	h.InjectLoad(-10) // clamps to zero
	if l := h.CurrentLoad(); l > 0.99 || math.IsNaN(l) {
		t.Fatalf("negative injection broke load: %g", l)
	}
	// Dilation of an idle speed-s host is 1/s.
	h2 := &Host{Speed: 2, TotalMem: 1, rng: h.rng}
	if got := h2.Dilation(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Dilation = %g, want 0.5", got)
	}
}

func TestFailureAndEcho(t *testing.T) {
	tb := build(t, Config{})
	h := tb.Sites[0].Hosts[0]
	if err := h.Echo(); err != nil {
		t.Fatalf("healthy echo failed: %v", err)
	}
	h.Fail()
	if err := h.Echo(); err == nil {
		t.Fatal("failed host answered echo")
	}
	if h.Info().Status != repository.HostDown {
		t.Fatal("Info does not reflect failure")
	}
	h.Recover()
	if err := h.Echo(); err != nil {
		t.Fatalf("recovered echo failed: %v", err)
	}
}

func TestMemoryClaims(t *testing.T) {
	tb := build(t, Config{Seed: 3})
	h := tb.Sites[0].Hosts[0]
	if err := h.ClaimMem(h.TotalMem + 1); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("over-claim: %v", err)
	}
	if err := h.ClaimMem(-5); err == nil {
		t.Fatal("negative claim accepted")
	}
	if err := h.ClaimMem(h.TotalMem / 2); err != nil {
		t.Fatal(err)
	}
	if avail := h.Info().AvailMem; avail != h.TotalMem-h.TotalMem/2 {
		t.Fatalf("avail after claim = %d", avail)
	}
	h.ReleaseMem(h.TotalMem) // over-release clamps
	if avail := h.Info().AvailMem; avail != h.TotalMem {
		t.Fatalf("avail after release = %d", avail)
	}
}

func TestRefreshRepos(t *testing.T) {
	tb := build(t, Config{Seed: 9})
	dead := tb.Sites[1].Hosts[2]
	dead.Fail()
	if err := tb.RefreshRepos(time.Unix(100, 0)); err != nil {
		t.Fatal(err)
	}
	// Up hosts got fresh samples.
	up := tb.Sites[0].Hosts[0]
	rec, err := tb.Sites[0].Repo.Resources.Host(up.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.RecentLoads) == 0 {
		t.Fatal("no workload recorded for up host")
	}
	// Dead host marked down.
	drec, err := tb.Sites[1].Repo.Resources.Host(dead.Name)
	if err != nil {
		t.Fatal(err)
	}
	if drec.Status != repository.HostDown {
		t.Fatal("failed host not marked down")
	}
	// Recovery flips it back.
	dead.Recover()
	if err := tb.RefreshRepos(time.Unix(101, 0)); err != nil {
		t.Fatal(err)
	}
	drec, _ = tb.Sites[1].Repo.Resources.Host(dead.Name)
	if drec.Status != repository.HostUp {
		t.Fatal("recovered host not marked up")
	}
}

func TestHostConcurrentAccess(t *testing.T) {
	tb := build(t, Config{})
	h := tb.Sites[0].Hosts[0]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h.Sample(time.Now())
				h.InjectLoad(0.01)
				h.InjectLoad(-0.01)
				_ = h.Dilation()
				_ = h.Info()
				_ = h.Echo()
			}
		}()
	}
	wg.Wait()
}
