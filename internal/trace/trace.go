// Package trace renders execution timelines — text Gantt charts of
// simulated schedules and real runs, one row per host. It backs the
// visualization service's "application performance" view and the
// vdce-sim tool.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/exec"
	"vdce/internal/sim"
)

// Span is one task occupying one host for an interval.
type Span struct {
	Host  string
	Label string
	Start time.Duration
	End   time.Duration
}

// FromSim converts a simulated schedule into spans (one per task-host
// pair; parallel tasks occupy all their hosts).
func FromSim(g *afg.Graph, table *core.AllocationTable, res *sim.Result) []Span {
	var out []Span
	for _, e := range table.Entries {
		tt, ok := res.Times[e.Task]
		if !ok {
			continue
		}
		for _, h := range e.Hosts {
			out = append(out, Span{
				Host:  h,
				Label: fmt.Sprintf("%d", e.Task),
				Start: tt.Start,
				End:   tt.Finish,
			})
		}
	}
	return out
}

// FromRuns converts real execution runs into spans relative to the
// earliest start.
func FromRuns(runs []exec.TaskRun) []Span {
	if len(runs) == 0 {
		return nil
	}
	t0 := runs[0].Start
	for _, r := range runs {
		if r.Start.Before(t0) {
			t0 = r.Start
		}
	}
	var out []Span
	for _, r := range runs {
		label := fmt.Sprintf("%d", r.Task)
		if r.Terminated {
			label += "x"
		}
		out = append(out, Span{
			Host:  r.Host,
			Label: label,
			Start: r.Start.Sub(t0),
			End:   r.End.Sub(t0),
		})
	}
	return out
}

// Gantt renders the spans as an ASCII chart of the given width. Hosts
// are rows (sorted); each span paints its task label across its
// interval; '.' marks idle time.
func Gantt(spans []Span, width int) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if width < 20 {
		width = 20
	}
	var makespan time.Duration
	hostsSet := make(map[string]bool)
	for _, s := range spans {
		if s.End > makespan {
			makespan = s.End
		}
		hostsSet[s.Host] = true
	}
	if makespan <= 0 {
		makespan = 1
	}
	hosts := make([]string, 0, len(hostsSet))
	nameW := 0
	for h := range hostsSet {
		hosts = append(hosts, h)
		if len(h) > nameW {
			nameW = len(h)
		}
	}
	sort.Strings(hosts)

	col := func(t time.Duration) int {
		c := int(float64(t) / float64(makespan) * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Gantt (makespan %v, %d hosts)\n", makespan, len(hosts))
	for _, h := range hosts {
		row := []byte(strings.Repeat(".", width))
		for _, s := range spans {
			if s.Host != h {
				continue
			}
			lo, hi := col(s.Start), col(s.End)
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			seg := strings.Repeat("#", hi-lo)
			// Stamp the label into the left edge of the segment.
			label := s.Label
			if len(label) > len(seg) {
				label = label[:len(seg)]
			}
			copy(row[lo:hi], seg)
			copy(row[lo:lo+len(label)], label)
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, h, row)
	}
	return b.String()
}

// Utilization sums busy time per host over the spans and returns
// host -> fraction of the makespan spent busy.
func Utilization(spans []Span) map[string]float64 {
	var makespan time.Duration
	busy := make(map[string]time.Duration)
	for _, s := range spans {
		busy[s.Host] += s.End - s.Start
		if s.End > makespan {
			makespan = s.End
		}
	}
	out := make(map[string]float64, len(busy))
	if makespan <= 0 {
		return out
	}
	for h, d := range busy {
		out[h] = float64(d) / float64(makespan)
	}
	return out
}
