package trace

import (
	"strings"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/exec"
	"vdce/internal/netmodel"
	"vdce/internal/sim"
)

func TestGanttBasic(t *testing.T) {
	spans := []Span{
		{Host: "h1", Label: "0", Start: 0, End: time.Second},
		{Host: "h1", Label: "1", Start: time.Second, End: 2 * time.Second},
		{Host: "h2", Label: "2", Start: 0, End: 2 * time.Second},
	}
	out := Gantt(spans, 40)
	if !strings.Contains(out, "h1") || !strings.Contains(out, "h2") {
		t.Fatalf("missing hosts:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "0") {
		t.Fatalf("missing bars/labels:\n%s", out)
	}
	// h2's row must be fully busy (no dots between the bars).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "h2") {
			if strings.Contains(line, ".") {
				t.Fatalf("h2 shows idle time: %s", line)
			}
		}
	}
	if got := Gantt(nil, 40); !strings.Contains(got, "no spans") {
		t.Fatalf("empty gantt = %q", got)
	}
}

func TestUtilization(t *testing.T) {
	spans := []Span{
		{Host: "a", Start: 0, End: time.Second},
		{Host: "b", Start: 0, End: 2 * time.Second},
	}
	u := Utilization(spans)
	if u["a"] != 0.5 || u["b"] != 1.0 {
		t.Fatalf("utilization = %v", u)
	}
	if len(Utilization(nil)) != 0 {
		t.Fatal("empty spans produced utilization")
	}
}

func TestFromSim(t *testing.T) {
	g := afg.NewGraph("x")
	a := g.AddTask("A", "l", 0, 1)
	b := g.AddTask("B", "l", 1, 0)
	if err := g.Connect(a, 0, b, 0, 0); err != nil {
		t.Fatal(err)
	}
	net, err := netmodel.New([]string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	table := &core.AllocationTable{App: "x", Entries: []core.Placement{
		{Task: a, TaskName: "A", Site: "s", Hosts: []string{"h1"}, Predicted: time.Second},
		{Task: b, TaskName: "B", Site: "s", Hosts: []string{"h1", "h2"}, Predicted: time.Second},
	}}
	// Make B parallel so its two hosts are legal.
	if err := g.SetProps(b, afg.Properties{Mode: afg.Parallel, Nodes: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, table, net)
	if err != nil {
		t.Fatal(err)
	}
	spans := FromSim(g, table, res)
	// A on h1, B on h1 and h2 -> 3 spans.
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	chart := Gantt(spans, 30)
	if !strings.Contains(chart, "h2") {
		t.Fatalf("parallel host missing:\n%s", chart)
	}
}

func TestFromRuns(t *testing.T) {
	t0 := time.Now()
	runs := []exec.TaskRun{
		{Task: 0, Host: "h1", Start: t0, End: t0.Add(time.Second)},
		{Task: 1, Host: "h2", Start: t0.Add(time.Second), End: t0.Add(2 * time.Second), Terminated: true},
	}
	spans := FromRuns(runs)
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Start != 0 {
		t.Fatalf("spans not rebased: %v", spans[0])
	}
	if spans[1].Label != "1x" {
		t.Fatalf("terminated run not marked: %q", spans[1].Label)
	}
	if FromRuns(nil) != nil {
		t.Fatal("empty runs should be nil")
	}
}
