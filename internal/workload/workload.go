// Package workload generates the synthetic application flow graphs the
// benchmark harness sweeps over: the standard DAG families of the list
// scheduling literature (layered random graphs, fork-join, in/out trees,
// Gaussian elimination, FFT butterflies) parameterized by task count and
// communication-to-computation ratio (CCR).
//
// Each generated node carries a unique synthetic task name; Install
// registers per-node performance parameters into a site repository so
// the scheduler's prediction phase sees the same heterogeneous costs the
// level computation uses.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"vdce/internal/afg"
	"vdce/internal/repository"
)

// Graph couples an AFG with per-task costs for level computation and
// scheduling (seconds on the base processor).
type Graph struct {
	G *afg.Graph
	// Costs[i] is the base-processor execution time of task i.
	Costs []time.Duration
}

// CostFunc adapts Costs to afg.Levels.
func (w *Graph) CostFunc() afg.CostFunc {
	return func(id afg.TaskID) float64 { return w.Costs[id].Seconds() }
}

// Install registers every synthetic task's performance parameters (and
// executable locations on the given hosts) into a site repository, the
// way real task libraries populate the task-performance and
// task-constraints databases. Each node has a unique task name so its
// cost is individually predictable.
func (w *Graph) Install(repo *repository.Repository, hosts []string) error {
	for i, task := range w.G.Tasks {
		cost := w.Costs[i]
		if err := repo.TaskPerf.RegisterTask(repository.TaskParams{
			Name:           task.Name,
			ComputationOps: cost.Seconds() * 100e6, // default predictor base rate
			BaseTime:       cost,
			Parallelizable: false,
		}); err != nil {
			return err
		}
		for _, h := range hosts {
			if err := repo.Constraints.SetLocation(task.Name, h, "/opt/vdce/tasks/synthetic"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Params control generation.
type Params struct {
	// Tasks is the number of nodes (minimum 1).
	Tasks int
	// CCR is the communication-to-computation ratio: mean bytes per edge
	// are chosen so that transferring one edge at 1 MB/s costs CCR times
	// the mean task execution time.
	CCR float64
	// MeanCost is the mean task cost; default 100ms.
	MeanCost time.Duration
	// Seed drives all randomness.
	Seed int64
	// Width bounds the layer width for layered graphs; default sqrt(n).
	Width int
}

func (p *Params) fill() {
	if p.Tasks < 1 {
		p.Tasks = 1
	}
	if p.MeanCost <= 0 {
		p.MeanCost = 100 * time.Millisecond
	}
	if p.CCR < 0 {
		p.CCR = 0
	}
}

// edgeBytes converts the CCR into an edge payload: CCR * meanCost seconds
// of transfer at the nominal 1 MB/s WAN bandwidth.
func (p *Params) edgeBytes(rng *rand.Rand) int64 {
	if p.CCR == 0 {
		return 0
	}
	mean := p.CCR * p.MeanCost.Seconds() * 1e6 // bytes
	// Uniform in [0.5, 1.5) x mean keeps sizes positive and varied.
	return int64(mean * (0.5 + rng.Float64()))
}

// cost draws a task cost uniform in [0.5, 1.5) x mean.
func (p *Params) cost(rng *rand.Rand) time.Duration {
	return time.Duration(float64(p.MeanCost) * (0.5 + rng.Float64()))
}

// newGraph allocates the AFG shell with n synthetic tasks (uniquely
// named so each can carry its own performance parameters). Synthetic
// nodes get generous port counts so generators can wire freely.
func newGraph(name string, n int) *afg.Graph {
	g := afg.NewGraph(name)
	for i := 0; i < n; i++ {
		g.AddTask(fmt.Sprintf("syn-%04d", i), "synthetic", n, n)
	}
	return g
}

// Layered generates the Tobita-Kasahara-style random layered DAG: tasks
// are split into layers; each non-entry task draws 1-3 parents from the
// previous layer.
func Layered(p Params) (*Graph, error) {
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.Tasks
	width := p.Width
	if width <= 0 {
		width = intSqrt(n)
	}
	g := newGraph(fmt.Sprintf("layered-%d", n), n)
	costs := make([]time.Duration, n)
	for i := range costs {
		costs[i] = p.cost(rng)
	}
	// Assign tasks to layers of random width <= width.
	var layers [][]afg.TaskID
	next := 0
	for next < n {
		w := rng.Intn(width) + 1
		if next+w > n {
			w = n - next
		}
		layer := make([]afg.TaskID, w)
		for i := range layer {
			layer[i] = afg.TaskID(next + i)
		}
		layers = append(layers, layer)
		next += w
	}
	inPort := make([]int, n)
	for li := 1; li < len(layers); li++ {
		prev := layers[li-1]
		for _, id := range layers[li] {
			parents := rng.Intn(3) + 1
			if parents > len(prev) {
				parents = len(prev)
			}
			for _, pi := range rng.Perm(len(prev))[:parents] {
				from := prev[pi]
				if err := g.Connect(from, 0, id, inPort[id], p.edgeBytes(rng)); err != nil {
					return nil, err
				}
				inPort[id]++
			}
		}
	}
	return finish(g, costs)
}

// ForkJoin generates alternating fork and join stages: a chain of
// 1 -> w -> 1 -> w ... shapes.
func ForkJoin(p Params) (*Graph, error) {
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.Tasks
	width := p.Width
	if width <= 0 {
		width = intSqrt(n)
		if width < 2 {
			width = 2
		}
	}
	g := newGraph(fmt.Sprintf("forkjoin-%d", n), n)
	costs := make([]time.Duration, n)
	for i := range costs {
		costs[i] = p.cost(rng)
	}
	inPort := make([]int, n)
	connect := func(from, to afg.TaskID) error {
		err := g.Connect(from, 0, to, inPort[to], p.edgeBytes(rng))
		inPort[to]++
		return err
	}
	// Walk IDs in order: node 0 is the first hub; then groups of width
	// fan-out nodes joined by the next hub, repeating.
	hub := afg.TaskID(0)
	i := 1
	for i < n {
		w := width
		if i+w >= n {
			w = n - i - 1 // leave room for a join node if possible
		}
		if w <= 0 {
			// Tail: chain the remaining node(s).
			if err := connect(hub, afg.TaskID(i)); err != nil {
				return nil, err
			}
			hub = afg.TaskID(i)
			i++
			continue
		}
		var stage []afg.TaskID
		for k := 0; k < w; k++ {
			id := afg.TaskID(i + k)
			if err := connect(hub, id); err != nil {
				return nil, err
			}
			stage = append(stage, id)
		}
		i += w
		if i < n {
			join := afg.TaskID(i)
			for _, s := range stage {
				if err := connect(s, join); err != nil {
					return nil, err
				}
			}
			hub = join
			i++
		}
	}
	return finish(g, costs)
}

// GaussianElimination generates the classic GE task graph for an m x m
// system: pivot tasks chained down the diagonal, each fanning out to the
// update tasks of its trailing submatrix column. Total tasks =
// m + (m-1) + ... ≈ m(m+1)/2 - 1; Params.Tasks selects the smallest m
// whose graph has at least that many tasks.
func GaussianElimination(p Params) (*Graph, error) {
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))
	m := 2
	for geTasks(m) < p.Tasks {
		m++
	}
	n := geTasks(m)
	g := newGraph(fmt.Sprintf("gauss-%d(m=%d)", n, m), n)
	costs := make([]time.Duration, n)
	for i := range costs {
		costs[i] = p.cost(rng)
	}
	inPort := make([]int, n)
	connect := func(from, to afg.TaskID) error {
		err := g.Connect(from, 0, to, inPort[to], p.edgeBytes(rng))
		inPort[to]++
		return err
	}
	// Task layout per elimination step k (0-based): one pivot task, then
	// m-k-1 update tasks.
	id := 0
	prevUpd := []int(nil) // previous step's update tasks, by trailing column
	for k := 0; k < m-1; k++ {
		pivot := id
		id++
		if k > 0 {
			// Pivot depends on the first update task of the previous step.
			if err := connect(afg.TaskID(prevUpd[0]), afg.TaskID(pivot)); err != nil {
				return nil, err
			}
		}
		updates := make([]int, 0, m-k-1)
		for j := 0; j < m-k-1; j++ {
			u := id
			id++
			if err := connect(afg.TaskID(pivot), afg.TaskID(u)); err != nil {
				return nil, err
			}
			// Each update also depends on the corresponding update of the
			// previous step (data dependence on the trailing matrix).
			if k > 0 && j+1 < len(prevUpd) {
				if err := connect(afg.TaskID(prevUpd[j+1]), afg.TaskID(u)); err != nil {
					return nil, err
				}
			}
			updates = append(updates, u)
		}
		prevUpd = updates
	}
	return finish(g, costs)
}

func geTasks(m int) int {
	// For each step k in [0, m-2]: 1 pivot + (m-k-1) updates.
	total := 0
	for k := 0; k < m-1; k++ {
		total += 1 + (m - k - 1)
	}
	return total
}

// FFT generates the butterfly graph of an N-point FFT (N a power of two):
// log2(N) ranks of N nodes, each node depending on two nodes of the
// previous rank. Params.Tasks selects the smallest N with at least that
// many tasks.
func FFT(p Params) (*Graph, error) {
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))
	N := 2
	for N*(log2(N)+1) < p.Tasks {
		N *= 2
	}
	ranks := log2(N) + 1
	n := N * ranks
	g := newGraph(fmt.Sprintf("fft-%d(N=%d)", n, N), n)
	costs := make([]time.Duration, n)
	for i := range costs {
		costs[i] = p.cost(rng)
	}
	inPort := make([]int, n)
	node := func(rank, i int) afg.TaskID { return afg.TaskID(rank*N + i) }
	for r := 1; r < ranks; r++ {
		span := N >> r
		for i := 0; i < N; i++ {
			partner := i ^ span
			for _, from := range []afg.TaskID{node(r-1, i), node(r-1, partner)} {
				if err := g.Connect(from, 0, node(r, i), inPort[node(r, i)], p.edgeBytes(rng)); err != nil {
					return nil, err
				}
				inPort[node(r, i)]++
			}
		}
	}
	return finish(g, costs)
}

// InTree generates a reduction tree with the given fan-in (default 2):
// leaves feed parents until a single root remains.
func InTree(p Params) (*Graph, error) {
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.Tasks
	fanin := 2
	g := newGraph(fmt.Sprintf("intree-%d", n), n)
	costs := make([]time.Duration, n)
	for i := range costs {
		costs[i] = p.cost(rng)
	}
	// Children of node i are fanin*i+1 ... fanin*i+fanin (heap layout),
	// edges point child -> parent (reduction).
	inPort := make([]int, n)
	for i := 1; i < n; i++ {
		parent := (i - 1) / fanin
		if err := g.Connect(afg.TaskID(i), 0, afg.TaskID(parent), inPort[parent], p.edgeBytes(rng)); err != nil {
			return nil, err
		}
		inPort[parent]++
	}
	return finish(g, costs)
}

func finish(g *afg.Graph, costs []time.Duration) (*Graph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Graph{G: g, Costs: costs}, nil
}

func intSqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func log2(n int) int {
	l := 0
	for 1<<uint(l+1) <= n {
		l++
	}
	return l
}

// Family names a generator for table-driven sweeps.
type Family struct {
	Name string
	Gen  func(Params) (*Graph, error)
}

// Families returns the standard set used by E2/E9.
func Families() []Family {
	return []Family{
		{Name: "layered", Gen: Layered},
		{Name: "forkjoin", Gen: ForkJoin},
		{Name: "gauss", Gen: GaussianElimination},
		{Name: "fft", Gen: FFT},
		{Name: "intree", Gen: InTree},
	}
}
