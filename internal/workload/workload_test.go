package workload

import (
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/repository"
)

func TestAllFamiliesValidAndSized(t *testing.T) {
	for _, fam := range Families() {
		for _, n := range []int{1, 2, 5, 17, 60} {
			w, err := fam.Gen(Params{Tasks: n, CCR: 1, Seed: 42})
			if err != nil {
				t.Fatalf("%s(%d): %v", fam.Name, n, err)
			}
			if err := w.G.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", fam.Name, n, err)
			}
			if len(w.G.Tasks) < n {
				t.Fatalf("%s(%d): only %d tasks", fam.Name, n, len(w.G.Tasks))
			}
			if len(w.Costs) != len(w.G.Tasks) {
				t.Fatalf("%s(%d): %d costs for %d tasks", fam.Name, n, len(w.Costs), len(w.G.Tasks))
			}
			for i, c := range w.Costs {
				if c <= 0 {
					t.Fatalf("%s(%d): task %d has cost %v", fam.Name, n, i, c)
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, fam := range Families() {
		a, err := fam.Gen(Params{Tasks: 30, CCR: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := fam.Gen(Params{Tasks: 30, CCR: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.G.Edges) != len(b.G.Edges) {
			t.Fatalf("%s: edge counts differ", fam.Name)
		}
		for i := range a.G.Edges {
			if a.G.Edges[i] != b.G.Edges[i] {
				t.Fatalf("%s: edge %d differs", fam.Name, i)
			}
		}
		for i := range a.Costs {
			if a.Costs[i] != b.Costs[i] {
				t.Fatalf("%s: cost %d differs", fam.Name, i)
			}
		}
	}
}

func TestCCRControlsEdgeBytes(t *testing.T) {
	lo, err := Layered(Params{Tasks: 50, CCR: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Layered(Params{Tasks: 50, CCR: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	avg := func(w *Graph) float64 {
		var sum int64
		for _, e := range w.G.Edges {
			sum += e.SizeBytes
		}
		if len(w.G.Edges) == 0 {
			return 0
		}
		return float64(sum) / float64(len(w.G.Edges))
	}
	if avg(hi) < 50*avg(lo) {
		t.Fatalf("CCR 10 edges (%.0f B) not ~100x CCR 0.1 edges (%.0f B)", avg(hi), avg(lo))
	}
	zero, err := Layered(Params{Tasks: 20, CCR: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range zero.G.Edges {
		if e.SizeBytes != 0 {
			t.Fatal("CCR 0 produced nonzero edges")
		}
	}
}

func TestStructuralShapes(t *testing.T) {
	// In-tree: exactly one exit (the root, node 0).
	tree, err := InTree(Params{Tasks: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exits := tree.G.Exits(); len(exits) != 1 || exits[0] != 0 {
		t.Fatalf("in-tree exits = %v", exits)
	}
	// Fork-join: single entry.
	fj, err := ForkJoin(Params{Tasks: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if entries := fj.G.Entries(); len(entries) != 1 {
		t.Fatalf("fork-join entries = %v", entries)
	}
	// FFT: N entries (rank 0) and N exits (last rank), every interior
	// node has exactly 2 parents.
	fft, err := FFT(Params{Tasks: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nTotal := len(fft.G.Tasks)
	entries := fft.G.Entries()
	exits := fft.G.Exits()
	if len(entries) != len(exits) {
		t.Fatalf("fft entries %d != exits %d", len(entries), len(exits))
	}
	N := len(entries)
	for i := N; i < nTotal; i++ {
		if got := len(fft.G.Parents(afg.TaskID(i))); got < 1 || got > 2 {
			t.Fatalf("fft node %d has %d parents", i, got)
		}
	}
	// Gaussian elimination: single entry (first pivot).
	ge, err := GaussianElimination(Params{Tasks: 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if entries := ge.G.Entries(); len(entries) != 1 {
		t.Fatalf("gauss entries = %v", entries)
	}
}

func TestInstall(t *testing.T) {
	w, err := Layered(Params{Tasks: 10, CCR: 1, Seed: 2, MeanCost: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	repo := repository.New("s1")
	hosts := []string{"h1", "h2"}
	if err := w.Install(repo, hosts); err != nil {
		t.Fatal(err)
	}
	for i, task := range w.G.Tasks {
		p, err := repo.TaskPerf.Params(task.Name)
		if err != nil {
			t.Fatalf("task %d params: %v", i, err)
		}
		if p.BaseTime != w.Costs[i] {
			t.Fatalf("task %d base time %v != cost %v", i, p.BaseTime, w.Costs[i])
		}
		if !repo.Constraints.HasTask(task.Name, "h2") {
			t.Fatalf("task %d not installed on h2", i)
		}
	}
}

func TestCostFunc(t *testing.T) {
	w, err := InTree(Params{Tasks: 7, Seed: 1, MeanCost: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cf := w.CostFunc()
	for i := range w.Costs {
		if cf(afg.TaskID(i)) != w.Costs[i].Seconds() {
			t.Fatal("CostFunc mismatch")
		}
	}
}
