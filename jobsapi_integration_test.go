package vdce

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vdce/internal/repository"
	"vdce/internal/services"
	"vdce/internal/testbed"
)

// jobsClient is a minimal authenticated HTTP client for the editor's
// versioned job-control surface.
type jobsClient struct {
	t     *testing.T
	base  string
	token string
}

func newJobsClient(t *testing.T, base, user, pass string) *jobsClient {
	t.Helper()
	c := &jobsClient{t: t, base: base}
	out := c.do("POST", "/login", map[string]string{"user": user, "password": pass}, http.StatusOK)
	tok, _ := out["token"].(string)
	if tok == "" {
		t.Fatalf("login returned no token: %v", out)
	}
	c.token = tok
	return c
}

// do issues one request and decodes the JSON response, asserting the
// status code.
func (c *jobsClient) do(method, path string, body any, want int) map[string]any {
	c.t.Helper()
	out, code := c.try(method, path, body)
	if code != want {
		c.t.Fatalf("%s %s = %d (want %d): %v", method, path, code, want, out)
	}
	return out
}

// try issues one request and returns the decoded response and code.
func (c *jobsClient) try(method, path string, body any) (map[string]any, int) {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode
}

// importApp registers a soak graph and returns its app ID.
func (c *jobsClient) importApp(t *testing.T, i int) string {
	t.Helper()
	g := soakGraph(t, i)
	data, err := g.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", c.base+"/apps/import", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	id, _ := out["id"].(string)
	if resp.StatusCode != http.StatusCreated || id == "" {
		t.Fatalf("import = %d %v", resp.StatusCode, out)
	}
	return id
}

// submitV1 posts to the versioned submit endpoint and returns the job ID.
func (c *jobsClient) submitV1(t *testing.T, appID string, body any) string {
	t.Helper()
	out := c.do("POST", "/v1/apps/"+appID+"/submit", body, http.StatusAccepted)
	job, _ := out["job"].(map[string]any)
	id, _ := job["id"].(string)
	if id == "" {
		t.Fatalf("v1 submit returned no job id: %v", out)
	}
	return id
}

// jobStatus fetches GET /v1/jobs/{id}.
func (c *jobsClient) jobStatus(t *testing.T, id string) map[string]any {
	t.Helper()
	out := c.do("GET", "/v1/jobs/"+id, nil, http.StatusOK)
	job, _ := out["job"].(map[string]any)
	if job == nil {
		t.Fatalf("no job in response: %v", out)
	}
	return job
}

// waitState polls until the job reaches the state or the deadline hits.
func (c *jobsClient) waitState(t *testing.T, id, state string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		job := c.jobStatus(t, id)
		if job["state"] == state {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %q; last status %v", id, state, job)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPPriorityOrderingEndToEnd is the acceptance scenario: under a
// saturated admission queue, a job submitted through the editor's
// POST /v1/apps/{id}/submit with high priority completes before
// earlier-queued low-priority jobs, all observed over the HTTP surface.
func TestHTTPPriorityOrderingEndToEnd(t *testing.T) {
	env := saturatedEnv(t, 91, 0)
	ts := httptest.NewServer(env.EditorServer(true, 0).Handler())
	defer ts.Close()
	c := newJobsClient(t, ts.URL, "user_k", "vdce")

	const lows = 6
	lowIDs := make([]string, 0, lows)
	for i := 0; i < lows; i++ {
		app := c.importApp(t, 1)
		lowIDs = append(lowIDs, c.submitV1(t, app, map[string]any{"priority": 1}))
	}
	app := c.importApp(t, 3)
	highID := c.submitV1(t, app, map[string]any{"priority": 100})

	// The queue is saturated: the listing shows queued jobs with
	// positions, and the high-priority job is in front of every queued
	// low-priority one.
	list := c.do("GET", "/v1/jobs?state=queued", nil, http.StatusOK)
	queued, _ := list["jobs"].([]any)
	if len(queued) < lows-2 {
		t.Fatalf("expected a saturated queue, got %d queued jobs", len(queued))
	}
	var highPos float64 = -1
	lowPositions := map[string]float64{}
	for _, item := range queued {
		job := item.(map[string]any)
		pos, _ := job["queue_position"].(float64)
		if job["id"] == highID {
			highPos = pos
		} else {
			lowPositions[job["id"].(string)] = pos
		}
	}
	for id, pos := range lowPositions {
		if highPos >= 0 && pos < highPos {
			t.Fatalf("low-priority job %s (pos %v) ahead of high-priority (pos %v)", id, pos, highPos)
		}
	}

	env.Console.Resume()
	high := c.waitState(t, highID, services.JobStateDone, 2*time.Minute)
	highFinished, err := time.Parse(time.RFC3339Nano, high["finished_at"].(string))
	if err != nil {
		t.Fatal(err)
	}
	// Every job that was still queued when the high-priority one arrived
	// must have finished after it.
	overtaken := 0
	for _, id := range lowIDs {
		low := c.waitState(t, id, services.JobStateDone, 2*time.Minute)
		lowFinished, err := time.Parse(time.RFC3339Nano, low["finished_at"].(string))
		if err != nil {
			t.Fatal(err)
		}
		if lowFinished.After(highFinished) {
			overtaken++
		}
	}
	if overtaken < lows-2 {
		t.Fatalf("high-priority HTTP submission overtook only %d of %d low-priority jobs", overtaken, lows)
	}
}

// TestHTTPCancelQueuedAndRunning exercises DELETE /v1/jobs/{id} on both
// a queued and a running job through the editor surface, plus the
// owner-authorization and pagination rules.
func TestHTTPCancelQueuedAndRunning(t *testing.T) {
	env := saturatedEnv(t, 92, 0)
	users := env.Sites[0].Repo.Users
	if _, err := users.AddUser("rival", "secret", 3, repository.DomainGlobal); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(env.EditorServer(true, 0).Handler())
	defer ts.Close()
	c := newJobsClient(t, ts.URL, "user_k", "vdce")

	// First job: runs immediately and parks at the suspended console.
	runningID := c.submitV1(t, c.importApp(t, 1), nil)
	// Backlog so the next jobs stay queued.
	c.submitV1(t, c.importApp(t, 1), map[string]any{"priority": 10})
	queuedID := c.submitV1(t, c.importApp(t, 1), nil)

	// Unauthenticated and unauthorized access.
	anon := &jobsClient{t: t, base: ts.URL}
	if _, code := anon.try("GET", "/v1/jobs", nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/jobs = %d, want 401", code)
	}
	rival := newJobsClient(t, ts.URL, "rival", "secret")
	if _, code := rival.try("DELETE", "/v1/jobs/"+queuedID, nil); code != http.StatusForbidden {
		t.Fatalf("cross-owner cancel = %d, want 403", code)
	}
	if _, code := c.try("DELETE", "/v1/jobs/job-404", nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job = %d, want 404", code)
	}

	// Cancel the queued job: it is dropped without ever starting.
	out := c.do("DELETE", "/v1/jobs/"+queuedID, nil, http.StatusOK)
	job, _ := out["job"].(map[string]any)
	if job["state"] != services.JobStateCanceled {
		t.Fatalf("canceled queued job state = %v, want canceled", job["state"])
	}

	// Cancel the running job: it aborts through the engine.
	c.waitState(t, runningID, services.JobStateRunning, 30*time.Second)
	c.do("DELETE", "/v1/jobs/"+runningID, nil, http.StatusOK)
	got := c.waitState(t, runningID, services.JobStateCanceled, 30*time.Second)
	if got["error"] == "" {
		t.Fatal("canceled running job reports no error")
	}

	// Pagination is deterministic: two cursor pages of one cover the two
	// canceled jobs without overlap, and the count-only form agrees.
	list := c.do("GET", "/v1/jobs?state=canceled&limit=1", nil, http.StatusOK)
	first, _ := list["jobs"].([]any)
	next, _ := list["next_cursor"].(string)
	if next == "" {
		t.Fatalf("first canceled page carries no next_cursor: %v", list)
	}
	list2 := c.do("GET", "/v1/jobs?state=canceled&limit=1&cursor="+next, nil, http.StatusOK)
	second, _ := list2["jobs"].([]any)
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("pagination pages = %d, %d entries; want 1 and 1", len(first), len(second))
	}
	a := first[0].(map[string]any)["id"]
	b := second[0].(map[string]any)["id"]
	if a == b {
		t.Fatalf("pagination returned the same job twice: %v", a)
	}
	count := c.do("GET", "/v1/jobs?state=canceled&limit=0", nil, http.StatusOK)
	if total, _ := count["total"].(float64); total != 2 {
		t.Fatalf("canceled total = %v, want 2", total)
	}

	env.Console.Resume()
	drainCtx, cancel := contextWithTimeout(2 * time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPDeadlineSubmit verifies deadline_ms flows through the v1
// submit endpoint: a queued job past its deadline never runs.
func TestHTTPDeadlineSubmit(t *testing.T) {
	env := saturatedEnv(t, 93, 0)
	ts := httptest.NewServer(env.EditorServer(true, 0).Handler())
	defer ts.Close()
	c := newJobsClient(t, ts.URL, "user_k", "vdce")

	// Saturate, then submit with a deadline that expires while queued.
	c.submitV1(t, c.importApp(t, 1), map[string]any{"priority": 10})
	c.submitV1(t, c.importApp(t, 1), map[string]any{"priority": 10})
	doomedID := c.submitV1(t, c.importApp(t, 1), map[string]any{"deadline_ms": 30})
	if _, code := c.try("POST", "/v1/apps/"+c.importApp(t, 1)+"/submit",
		map[string]any{"deadline_ms": -5}); code != http.StatusBadRequest {
		t.Fatalf("negative deadline_ms accepted: %d", code)
	}
	time.Sleep(60 * time.Millisecond)
	env.Console.Resume()
	got := c.waitState(t, doomedID, services.JobStateFailed, 2*time.Minute)
	if got["error"] == "" {
		t.Fatal("deadline-expired job reports no error")
	}
	drainCtx, cancel := contextWithTimeout(2 * time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPQuotaRejectionAndOwners is the quota acceptance scenario on
// the editor's owner-scoped /v1 surface: a queued-cap overflow answers
// 429 with a JSON quota error (in-flight overflow parks instead), and
// GET /v1/owners reports the caller's weight, limits, and usage
// counters matching the job board's ground truth.
func TestHTTPQuotaRejectionAndOwners(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 94},
		Pipeline: PipelineConfig{
			QueueDepth:        16,
			SchedulerWorkers:  1,
			MaxConcurrentRuns: 1,
			Quota: QuotaConfig{
				MaxQueuedPerOwner:   2,
				MaxInFlightPerOwner: 1,
			},
		},
	})
	env.Console.Suspend()
	ts := httptest.NewServer(env.EditorServer(true, 0).Handler())
	defer ts.Close()
	c := newJobsClient(t, ts.URL, "user_k", "vdce")

	// First job dispatches (owner hits the in-flight cap of 1); the next
	// two park in the queue; the fourth is over the queued cap.
	firstID := c.submitV1(t, c.importApp(t, 1), nil)
	c.waitState(t, firstID, services.JobStateRunning, 30*time.Second)
	secondID := c.submitV1(t, c.importApp(t, 1), nil)
	c.submitV1(t, c.importApp(t, 1), nil)
	out, code := c.try("POST", "/v1/apps/"+c.importApp(t, 1)+"/submit", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d %v, want 429", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "quota") {
		t.Fatalf("429 body does not mention the quota: %v", out)
	}
	// The in-flight overflow parked — it is queued, not rejected.
	if got := c.jobStatus(t, secondID)["state"]; got != services.JobStateQueued {
		t.Fatalf("in-flight overflow state = %v, want queued (parked)", got)
	}

	// /v1/owners on the owner-scoped mount: exactly the caller's row,
	// with weight from the account (user_k priority 5), the configured
	// limits, and counters matching the board's ground truth.
	owners := c.do("GET", "/v1/owners", nil, http.StatusOK)
	rows, _ := owners["owners"].([]any)
	if len(rows) != 1 {
		t.Fatalf("owner-scoped /v1/owners rows = %d, want 1: %v", len(rows), rows)
	}
	row := rows[0].(map[string]any)
	if row["owner"] != "user_k" {
		t.Fatalf("owners row = %v, want user_k", row["owner"])
	}
	if w, _ := row["weight"].(float64); w != 5 {
		t.Fatalf("owners weight = %v, want the account priority 5", row["weight"])
	}
	if mq, _ := row["max_queued"].(float64); mq != 2 {
		t.Fatalf("owners max_queued = %v, want 2", row["max_queued"])
	}
	if mi, _ := row["max_in_flight"].(float64); mi != 1 {
		t.Fatalf("owners max_in_flight = %v, want 1", row["max_in_flight"])
	}
	usage, _ := row["usage"].(map[string]any)
	truth := env.Board.OwnerUsages()["user_k"]
	if int(usage["queued"].(float64)) != truth.Queued ||
		int(usage["in_flight"].(float64)) != truth.InFlight ||
		int(usage["hosts_held"].(float64)) != truth.HostsHeld ||
		int(usage["total"].(float64)) != truth.Total {
		t.Fatalf("/v1/owners usage %v does not match JobBoard ground truth %+v", usage, truth)
	}
	if truth.Queued != 2 || truth.InFlight != 1 {
		t.Fatalf("ground truth = %+v, want 2 queued / 1 in flight", truth)
	}

	// Drain; freed quota admits again and counters return to rest.
	env.Console.Resume()
	drainCtx, cancel := contextWithTimeout(4 * time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	c.submitV1(t, c.importApp(t, 1), nil)
	drainCtx2, cancel2 := contextWithTimeout(4 * time.Minute)
	defer cancel2()
	if err := env.Drain(drainCtx2); err != nil {
		t.Fatal(err)
	}
	owners = c.do("GET", "/v1/owners", nil, http.StatusOK)
	rows, _ = owners["owners"].([]any)
	usage, _ = rows[0].(map[string]any)["usage"].(map[string]any)
	if q, inf := usage["queued"].(float64), usage["in_flight"].(float64); q != 0 || inf != 0 {
		t.Fatalf("post-drain usage = %v, want 0 queued / 0 in flight", usage)
	}
	if done, _ := usage["done"].(float64); done != 4 {
		t.Fatalf("post-drain done = %v, want 4", usage["done"])
	}
}

// contextWithTimeout is a tiny helper keeping test deadlines uniform.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
