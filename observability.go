package vdce

import (
	"log/slog"
	"vdce/internal/breaker"
	"vdce/internal/obs"
	"vdce/internal/services"
)

// discardLog backs every nil-logger default so call sites never branch.
var discardLog = slog.New(slog.DiscardHandler)

// envMetrics holds the pre-resolved handles every pipeline hot path
// records through. Handles are resolved once here — label lookup,
// map access, and allocation all happen at wiring time — so the
// record calls on the submit/schedule/dispatch paths are pure atomics.
type envMetrics struct {
	// Admission.
	submitWait      *obs.Histogram // submitted → admitted
	accepted        *obs.Counter
	rejectQueueFull *obs.Counter
	rejectDeadline  *obs.Counter
	rejectBreaker   *obs.Counter
	rejectQuota     *obs.Counter

	// Scheduler.
	roundLatency *obs.Histogram
	// batchPops is the batched-handoff observability: how many jobs one
	// worker wakeup drained from the admission queue (1 = the pre-batch
	// behavior; the distribution shifting right under load is the
	// amortization working).
	batchPops *obs.Histogram

	// Job lifecycle phase durations, observed when each boundary is
	// crossed or at terminalize.
	phaseQueueWait    *obs.Histogram // admitted → scheduled
	phaseDispatchWait *obs.Histogram // scheduled → dispatched
	phaseRun          *obs.Histogram // running → terminal
	phaseTotal        *obs.Histogram // submitted → terminal
	completedDone     *obs.Counter
	completedFailed   *obs.Counter
	completedCanceled *obs.Counter
	hostParks         *obs.Counter

	// Execution recovery (fed by the engine's per-job event stream).
	reschedules  *obs.Counter
	hostFailures *obs.Counter

	// Breakers: opens per host, incremented from the OnTransition hook.
	// This counter — not the breaker package's private tally — is what
	// GET /v1/hosts reports, so the HTTP view and /metrics read one cell.
	breakerOpens *obs.CounterVec

	// Boot replay outcomes.
	recoveryRequeued     *obs.Counter
	recoveryRedispatched *obs.Counter
	recoveryTerminal     *obs.Counter
	recoveryExpired      *obs.Counter
}

// newEnvMetrics registers the pipeline's metric families on reg and
// resolves every hot-path handle.
func newEnvMetrics(reg *obs.Registry) *envMetrics {
	rejects := reg.Counter("vdce_admission_rejects_total",
		"Submissions rejected at admission, by reason (shed reasons plus owner quota).", "reason")
	phase := reg.Histogram("vdce_job_phase_seconds",
		"Job lifecycle phase durations: submit_wait, queue_wait, dispatch_wait, run, total.",
		obs.DefBuckets, "phase")
	completed := reg.Counter("vdce_jobs_completed_total",
		"Jobs reaching a terminal state, by state.", "state")
	recovery := reg.Counter("vdce_recovery_jobs_total",
		"Boot-replay outcomes of jobs recovered from the durable store.", "outcome")
	return &envMetrics{
		submitWait: reg.Histogram("vdce_admission_submit_wait_seconds",
			"Time from Submit to admission-queue entry (backpressure wait).", obs.DefBuckets).With(),
		accepted: reg.Counter("vdce_admission_accepted_total",
			"Submissions admitted into the queue.").With(),
		rejectQueueFull: rejects.With(ShedQueueFull),
		rejectDeadline:  rejects.With(ShedDeadlineInfeasible),
		rejectBreaker:   rejects.With(ShedBreakerSaturated),
		rejectQuota:     rejects.With("quota"),
		roundLatency: reg.Histogram("vdce_scheduler_round_seconds",
			"Site-scheduler round latency (Fig. 2 round per job).", obs.DefBuckets).With(),
		batchPops: reg.Histogram("vdce_admission_batch_pops",
			"Jobs drained from the admission queue per worker wakeup (batched handoff).",
			obs.ExponentialBuckets(1, 2, 6)).With(),
		phaseQueueWait:    phase.With("queue_wait"),
		phaseDispatchWait: phase.With("dispatch_wait"),
		phaseRun:          phase.With("run"),
		phaseTotal:        phase.With("total"),
		completedDone:     completed.With(services.JobStateDone),
		completedFailed:   completed.With(services.JobStateFailed),
		completedCanceled: completed.With(services.JobStateCanceled),
		hostParks: reg.Counter("vdce_dispatch_host_parks_total",
			"Scheduled jobs parked on the per-owner held-hosts quota.").With(),
		reschedules: reg.Counter("vdce_exec_reschedules_total",
			"Mid-run task reschedules across all jobs.").With(),
		hostFailures: reg.Counter("vdce_exec_host_failures_total",
			"Distinct per-job host failures forcing recovery.").With(),
		breakerOpens: reg.Counter("vdce_breaker_opens_total",
			"Circuit-breaker open transitions, by host.", "host"),
		recoveryRequeued:     recovery.With("requeued"),
		recoveryRedispatched: recovery.With("redispatched"),
		recoveryTerminal:     recovery.With("terminal-retained"),
		recoveryExpired:      recovery.With("deadline-expired"),
	}
}

// registerDerived registers the scrape-time collectors that sample
// subsystems which already answer cheaply on demand: queue depth,
// in-flight counts, retry-gate totals, rank-cache counters, breaker
// census, and broker subscribers. Called once from New after the
// pipeline is running; nothing here touches a hot path.
func (env *Environment) registerDerived(reg *obs.Registry) {
	pipe := env.pipe
	reg.GaugeFunc("vdce_admission_queue_depth",
		"Jobs waiting in the admission queue across owners.", nil,
		func(emit func(v float64, labelVals ...string)) {
			emit(float64(pipe.admit.queuedLen()))
		})
	reg.GaugeFunc("vdce_admission_owners",
		"Owner shares the admission queue currently tracks (live state only; drained owners are pruned).", nil,
		func(emit func(v float64, labelVals ...string)) {
			emit(float64(pipe.admit.ownerCount()))
		})
	reg.CounterFunc("vdce_admission_owner_prunes_total",
		"Idle owner shares retired from the admission queue.", nil,
		func(emit func(v float64, labelVals ...string)) {
			emit(float64(pipe.admit.pruneCount()))
		})
	reg.GaugeFunc("vdce_board_jobs",
		"Rows the sharded job board retains.", nil,
		func(emit func(v float64, labelVals ...string)) {
			emit(float64(env.Board.Len()))
		})
	reg.CounterFunc("vdce_board_snapshots_total",
		"Board shard-snapshot reads, by result: served from the generation cache or rebuilt after a write.",
		[]string{"result"},
		func(emit func(v float64, labelVals ...string)) {
			hits, rebuilds := env.Board.SnapshotStats()
			emit(float64(hits), "hit")
			emit(float64(rebuilds), "rebuild")
		})
	reg.GaugeFunc("vdce_jobs_inflight",
		"Admitted jobs not yet terminal (board view).", nil,
		func(emit func(v float64, labelVals ...string)) {
			emit(float64(env.Board.InFlight()))
		})
	reg.GaugeFunc("vdce_exec_dispatch_concurrency",
		"Applications executing right now.", nil,
		func(emit func(v float64, labelVals ...string)) {
			emit(float64(env.Engine.InFlight()))
		})
	reg.GaugeFunc("vdce_exec_dispatch_peak",
		"High-water mark of concurrent application executions.", nil,
		func(emit func(v float64, labelVals ...string)) {
			emit(float64(env.Engine.PeakConcurrency()))
		})
	reg.CounterFunc("vdce_exec_retries_total",
		"Engine retry attempts admitted by the token-bucket budget.", nil,
		func(emit func(v float64, labelVals ...string)) {
			retries, _ := env.Engine.RetryStats()
			emit(float64(retries))
		})
	reg.CounterFunc("vdce_exec_retry_parks_total",
		"Engine retries parked waiting for a budget token.", nil,
		func(emit func(v float64, labelVals ...string)) {
			_, parked := env.Engine.RetryStats()
			emit(float64(parked))
		})
	reg.CounterFunc("vdce_scheduler_rankcache_total",
		"Ranked-host cache counters summed across sites, by event.",
		[]string{"event"},
		func(emit func(v float64, labelVals ...string)) {
			var hits, misses, inval int64
			for _, s := range env.Sites {
				cs := s.CacheStats()
				hits += cs.Hits
				misses += cs.Misses
				inval += cs.Invalidations
			}
			emit(float64(hits), "hit")
			emit(float64(misses), "miss")
			emit(float64(inval), "invalidation")
		})
	reg.GaugeFunc("vdce_scheduler_rankcache_hit_ratio",
		"Fraction of RankedHosts calls served from the generation cache.", nil,
		func(emit func(v float64, labelVals ...string)) {
			var agg struct{ hits, misses int64 }
			for _, s := range env.Sites {
				cs := s.CacheStats()
				agg.hits += cs.Hits
				agg.misses += cs.Misses
			}
			if agg.hits+agg.misses == 0 {
				emit(0)
				return
			}
			emit(float64(agg.hits) / float64(agg.hits+agg.misses))
		})
	if env.Breakers != nil {
		reg.GaugeFunc("vdce_breaker_hosts",
			"Hosts per circuit-breaker state.", []string{"state"},
			func(emit func(v float64, labelVals ...string)) {
				counts := map[string]int{
					breaker.Closed.String():   0,
					breaker.Open.String():     0,
					breaker.HalfOpen.String(): 0,
				}
				for _, hs := range env.Breakers.Snapshot() {
					counts[hs.State]++
				}
				for state, n := range counts {
					emit(float64(n), state)
				}
			})
	}
}

// breakerHook returns the OnTransition callback New installs on the
// breaker set: it feeds the shared opens counter (the cell /v1/hosts
// and /metrics both read) and the structured log. next preserves any
// caller-supplied hook.
func breakerHook(m *envMetrics, log *slog.Logger,
	next func(string, breaker.State, breaker.State)) func(string, breaker.State, breaker.State) {
	return func(host string, from, to breaker.State) {
		if to == breaker.Open {
			m.breakerOpens.With(host).Inc()
		}
		log.Info("breaker transition", "host", host, "from", from.String(), "to", to.String())
		if next != nil {
			next(host, from, to)
		}
	}
}
