package vdce

import (
	"context"
	"strings"
	"testing"
	"time"

	"vdce/internal/services"
	"vdce/internal/testbed"
)

// phaseIndex returns the position of the first trace event named ev, or
// -1 when the trace never recorded it.
func phaseIndex(tr services.JobTrace, ev string) int {
	for i, e := range tr.Events {
		if e.Event == ev {
			return i
		}
	}
	return -1
}

// checkTracePin asserts the lifecycle-trace contract every terminal job
// must satisfy: the chain starts at submitted, ends at the terminal
// state, timestamps never go backwards, and the timings block is
// present with a coherent total. fullChain additionally requires every
// intermediate phase (admitted, scheduled, dispatched, running) — true
// for jobs that executed in this incarnation, false for terminal
// restores recovered from the store, whose intermediate stamps died
// with the previous process.
func checkTracePin(t *testing.T, tr services.JobTrace, fullChain bool) {
	t.Helper()
	if tr.State != services.JobStateDone && tr.State != services.JobStateFailed && tr.State != services.JobStateCanceled {
		t.Fatalf("job %s: checkTracePin on non-terminal state %q", tr.ID, tr.State)
	}
	if len(tr.Events) < 2 {
		t.Fatalf("job %s: trace has %d events, want >= 2: %+v", tr.ID, len(tr.Events), tr.Events)
	}
	if tr.Events[0].Event != services.PhaseSubmitted {
		t.Fatalf("job %s: trace starts with %q, want %q", tr.ID, tr.Events[0].Event, services.PhaseSubmitted)
	}
	if last := tr.Events[len(tr.Events)-1].Event; last != tr.State {
		t.Fatalf("job %s: trace ends with %q, want terminal state %q", tr.ID, last, tr.State)
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].At.Before(tr.Events[i-1].At) {
			t.Fatalf("job %s: trace time went backwards at %d: %v after %v (%q -> %q)",
				tr.ID, i, tr.Events[i].At, tr.Events[i-1].At,
				tr.Events[i-1].Event, tr.Events[i].Event)
		}
	}
	if fullChain {
		chain := []string{
			services.PhaseSubmitted, services.PhaseAdmitted, services.PhaseScheduled,
			services.PhaseDispatched, services.PhaseRunning,
		}
		if tr.State == services.JobStateCanceled {
			// A job canceled before dispatch legitimately stops mid-chain;
			// require only the prefix through admission.
			chain = chain[:2]
		}
		prev := -1
		for _, ph := range chain {
			i := phaseIndex(tr, ph)
			if i < 0 {
				t.Fatalf("job %s (%s): trace missing phase %q: %+v", tr.ID, tr.State, ph, tr.Events)
			}
			if i <= prev {
				t.Fatalf("job %s: phase %q at %d out of order (previous phase at %d)", tr.ID, ph, i, prev)
			}
			prev = i
		}
	}
	if tr.Timings == nil {
		t.Fatalf("job %s: terminal job has no timings block", tr.ID)
	}
	if tr.Timings.SubmittedAt.IsZero() || tr.Timings.FinishedAt.IsZero() {
		t.Fatalf("job %s: timings missing endpoints: %+v", tr.ID, tr.Timings)
	}
	if tr.Timings.TotalSeconds < 0 {
		t.Fatalf("job %s: negative total %v", tr.ID, tr.Timings.TotalSeconds)
	}
}

// TestJobLifecycleTrace pins the per-job trace contract on a live
// environment: every terminal job — completed, canceled, whatever path
// it took — exposes a complete, monotone phase chain and a timings
// block via Environment.JobTrace.
func TestJobLifecycleTrace(t *testing.T) {
	env := newEnv(t, Config{
		Testbed:  testbed.Config{Sites: 2, HostsPerGroup: 3, Seed: 7, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{SchedulerWorkers: 2, MaxConcurrentRuns: 2},
	})
	ctx := context.Background()

	jobs := make([]*Job, 0, 4)
	for i := 0; i < 4; i++ {
		j, err := env.Submit(ctx, spinJobGraph("trace", 1), WithOwner("alice"), WithPriority(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s: %v", j.ID, err)
		}
	}
	// One canceled job exercises the truncated-chain terminal path.
	canceled, err := env.Submit(ctx, spinJobGraph("trace-cancel", 2000), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	canceled.Cancel()
	_ = canceled.Wait(ctx)

	for _, j := range append(jobs, canceled) {
		tr, ok := env.JobTrace(j.ID)
		if !ok {
			t.Fatalf("no trace for job %s", j.ID)
		}
		checkTracePin(t, tr, true)
	}

	// Completed jobs must have fed the phase histograms.
	if n := env.Obs.Total("vdce_job_phase_seconds"); n < 4 {
		t.Fatalf("vdce_job_phase_seconds observations = %v, want >= 4", n)
	}
	if n := env.Obs.Total("vdce_jobs_completed_total"); n < 5 {
		t.Fatalf("vdce_jobs_completed_total = %v, want >= 5", n)
	}
}

// TestJobLifecycleTraceAcrossRestart pins the trace contract for
// recovered jobs: after a crash-restart, terminal restores keep a
// monotone submitted->terminal trace, and re-adopted jobs record a
// "recovered" marker followed by a full fresh phase chain.
func TestJobLifecycleTraceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	env, err := New(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	done, err := env.Submit(ctx, spinJobGraph("pre-done", 1), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := done.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	running, err := env.Submit(ctx, spinJobGraph("pre-running", 2500), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, JobRunning)
	queued, err := env.Submit(ctx, spinJobGraph("backlog", 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	env.Crash()

	env2, err := New(durableCfg(dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer env2.Close()
	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env2.Drain(drainCtx); err != nil {
		t.Fatalf("post-restart drain: %v", err)
	}

	// The terminal restore: submitted -> done, no intermediate phases
	// (they died with the previous incarnation), still monotone.
	tr, ok := env2.JobTrace(done.ID)
	if !ok {
		t.Fatalf("no trace for retained job %s", done.ID)
	}
	checkTracePin(t, tr, false)

	// Re-adopted jobs ran to done here: full chain required, and the
	// in-flight one must carry the recovered marker.
	for _, id := range []string{running.ID, queued.ID} {
		tr, ok := env2.JobTrace(id)
		if !ok {
			t.Fatalf("no trace for recovered job %s", id)
		}
		checkTracePin(t, tr, true)
	}
	if tr, _ := env2.JobTrace(running.ID); phaseIndex(tr, "recovered") < 0 {
		t.Fatalf("re-dispatched job %s trace has no recovered marker: %+v", running.ID, tr.Events)
	}

	if n := env2.Obs.Total("vdce_recovery_jobs_total"); n != 3 {
		t.Fatalf("vdce_recovery_jobs_total = %v, want 3", n)
	}
}

// TestMetricsExpositionEndToEnd scrapes a live durable environment's
// registry and asserts every instrumented subsystem shows up in the
// Prometheus text: admission, scheduler, exec, breakers, WAL, events.
func TestMetricsExpositionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.StartBreakers = true
	env, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ctx := context.Background()
	j, err := env.Submit(ctx, spinJobGraph("scrape", 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	env.Obs.WriteText(&sb)
	text := sb.String()
	for _, series := range []string{
		"vdce_admission_queue_depth",
		"vdce_admission_accepted_total",
		"vdce_admission_submit_wait_seconds_bucket",
		"vdce_scheduler_round_seconds_count",
		"vdce_scheduler_rankcache_total",
		"vdce_jobs_inflight",
		"vdce_jobs_completed_total",
		"vdce_job_phase_seconds_bucket",
		"vdce_exec_dispatch_concurrency",
		"vdce_exec_retries_total",
		"vdce_breaker_hosts",
		"vdce_wal_append_seconds_bucket",
		"vdce_wal_fsync_batch_records_count",
		"vdce_events_published_total",
		"vdce_events_subscribers",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing series %s", series)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
	if env.Obs.Total("vdce_scheduler_round_seconds") < 1 {
		t.Error("no scheduler rounds observed")
	}
	if env.Obs.Total("vdce_wal_append_seconds") < 1 {
		t.Error("no WAL appends observed")
	}
	if env.Obs.Total("vdce_events_published_total") < 1 {
		t.Error("no events published")
	}
}
