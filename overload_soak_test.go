package vdce

// Overload-resilience acceptance (ISSUE 8): under a sustained 4x
// overload with a flapping host, submitters are shed fast instead of
// blocking, shed submissions leave no control-plane residue, the
// engine's retries stay inside the configured budget, the flapping
// host's circuit breaker opens and half-open probes re-admit it, and
// the readiness verdict tracks recovery replay and the shed rate.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vdce/internal/breaker"
	"vdce/internal/detect"
	"vdce/internal/exec"
	"vdce/internal/testbed"
)

// submitOutcome records one submitter's result in the overload waves.
type submitOutcome struct {
	job     *Job
	err     error
	latency time.Duration
}

// submitWave fires n concurrent submissions of ms-millisecond spin
// chains and returns every outcome.
func submitWave(t *testing.T, env *Environment, n, ms int, tag string) []submitOutcome {
	t.Helper()
	out := make([]submitOutcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := spinChain(t, fmt.Sprintf("%s-%d", tag, i), ms)
			start := time.Now()
			job, err := env.Submit(context.Background(), g)
			out[i] = submitOutcome{job: job, err: err, latency: time.Since(start)}
		}(i)
	}
	wg.Wait()
	return out
}

// TestOverloadShedsFastWithoutResidue pins the shed contract on a
// deliberately saturated pipeline: one run slot held by a long job, the
// worker parked behind it, and the 2-deep queue full. Every further
// submission must fail fast with a typed queue-full ShedError instead
// of blocking, and must leave no job on the board or in the store.
func TestOverloadShedsFastWithoutResidue(t *testing.T) {
	const maxWait = 50 * time.Millisecond
	env, err := New(Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 3, Seed: 11, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{
			QueueDepth: 2, SchedulerWorkers: 1, MaxConcurrentRuns: 1,
			Shed: ShedConfig{MaxSubmitWait: maxWait, RetryAfter: 2 * time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ctx := context.Background()

	hold, err := env.Submit(ctx, spinJobGraph("hold", 2500))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hold, JobRunning)

	outcomes := submitWave(t, env, 16, 1, "wave")
	accepted, shed := 0, 0
	for i, oc := range outcomes {
		if oc.latency > 2*time.Second {
			t.Errorf("submission %d took %v; shedding must bound the wait near %v", i, oc.latency, maxWait)
		}
		if oc.err == nil {
			accepted++
			continue
		}
		shed++
		if !errors.Is(oc.err, ErrShed) {
			t.Fatalf("submission %d failed with %v, want ErrShed", i, oc.err)
		}
		var se *ShedError
		if !errors.As(oc.err, &se) {
			t.Fatalf("submission %d error %T is not *ShedError", i, oc.err)
		}
		if se.Reason != ShedQueueFull {
			t.Errorf("submission %d shed reason = %q, want %q", i, se.Reason, ShedQueueFull)
		}
		if se.RetryAfter != 2*time.Second {
			t.Errorf("submission %d RetryAfter = %v, want the configured 2s", i, se.RetryAfter)
		}
	}
	if shed == 0 {
		t.Fatal("a 16-submission wave against capacity ~4 shed nothing")
	}
	// No residue: the board holds exactly the hold job plus the accepted
	// wave — shed submissions never registered anywhere.
	if got := len(env.Jobs()); got != accepted+1 {
		t.Fatalf("board holds %d jobs, want %d accepted + 1 hold (shed residue?)", got, accepted+1)
	}
	if acc, sh := env.ShedStats(); acc != int64(accepted+1) || sh != int64(shed) {
		t.Fatalf("ShedStats = %d/%d, want %d accepted, %d shed", acc, sh, accepted+1, shed)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, oc := range outcomes {
		if oc.err == nil && oc.job.State() != JobDone {
			t.Errorf("accepted job %d ended %s, want done", i, oc.job.State())
		}
	}
}

// TestBrownoutSoakOverloadAndFlappingHost is the brownout soak the CI
// runs under -race: a 4x overload wave while one placed host flaps
// up/down. Submitters shed fast instead of blocking, the flapping
// host's breaker opens and half-open probes re-admit it once it holds
// still, retries stay inside the engine-wide budget, and the
// environment is ready again once the storm passes.
func TestBrownoutSoakOverloadAndFlappingHost(t *testing.T) {
	waveN, flapCycles := 40, 4
	if testing.Short() {
		waveN, flapCycles = 20, 3
	}
	const (
		maxWait      = 100 * time.Millisecond
		budgetPerSec = 50.0
		budgetBurst  = 8
	)
	type transition struct {
		host     string
		from, to breaker.State
	}
	var trMu sync.Mutex
	var transitions []transition
	env, err := New(Config{
		Testbed: testbed.Config{
			Sites: 2, HostsPerGroup: 4, Seed: 77,
			SpeedMin: 1, SpeedMax: 2, BaseLoadMax: 0.1, LoadSigma: 0.01,
		},
		StartDaemons:  true,
		MonitorPeriod: 10 * time.Millisecond,
		StartDetector: true,
		Detect: detect.Config{
			SuspicionTimeout: 100 * time.Millisecond,
			ConfirmQuorum:    2,
			TickPeriod:       25 * time.Millisecond,
		},
		StartBreakers: true,
		Breaker: breaker.Config{
			// A flapping host mixes successes into its window, so the
			// soak trips on a modest failure share and re-admits after a
			// single good probe.
			MinSamples: 2, FailureThreshold: 0.25,
			OpenTimeout: 300 * time.Millisecond, ProbeSuccesses: 1,
			OnTransition: func(h string, from, to breaker.State) {
				trMu.Lock()
				transitions = append(transitions, transition{h, from, to})
				trMu.Unlock()
			},
		},
		Retry: exec.RetryConfig{
			BaseDelay: 2 * time.Millisecond, MaxDelay: 30 * time.Millisecond,
			BudgetPerSecond: budgetPerSec, BudgetBurst: budgetBurst, Seed: 42,
		},
		Pipeline: PipelineConfig{
			QueueDepth: 8, SchedulerWorkers: 2, MaxConcurrentRuns: 2,
			Shed: ShedConfig{MaxSubmitWait: maxWait},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.Engine.MaxAttempts = 8
	env.Engine.LoadCheckPeriod = 2 * time.Millisecond
	start := time.Now()

	// The 4x overload wave: capacity is ~10 admitted-but-unfinished jobs
	// (queue 8 + 2 run slots), the wave is 4x that.
	outcomes := submitWave(t, env, waveN, 25, "soak")
	var jobs []*Job
	shed := 0
	for i, oc := range outcomes {
		if oc.latency > 3*time.Second {
			t.Errorf("submission %d blocked %v; shedding must bound the wait near %v", i, oc.latency, maxWait)
		}
		switch {
		case oc.err == nil:
			jobs = append(jobs, oc.job)
		case errors.Is(oc.err, ErrShed):
			shed++
		default:
			t.Errorf("submission %d failed with %v, want success or ErrShed", i, oc.err)
		}
	}
	if shed == 0 {
		t.Error("4x overload wave shed nothing")
	}
	if len(jobs) == 0 {
		t.Fatal("4x overload wave accepted nothing")
	}

	// Pick a flap victim that provably intersects live placements.
	var victim string
	pickDeadline := time.Now().Add(30 * time.Second)
	for victim == "" && time.Now().Before(pickDeadline) {
		for _, j := range jobs {
			if table := j.Table(); table != nil {
				victim = table.Entries[0].Hosts[0]
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if victim == "" {
		t.Fatal("no accepted job scheduled within 30s; cannot pick a flap victim")
	}
	h, err := env.TB.Host(victim)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flapping %s for %d cycles", victim, flapCycles)

	// Flap: down long enough for the detector to suspect (100ms timeout)
	// and the watchdog to kill in-flight work, up briefly in between —
	// the pattern the detector alone keeps forgiving. A trickle of
	// submissions keeps placements flowing while the host oscillates.
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		for i := 0; i < flapCycles; i++ {
			h.Fail()
			time.Sleep(200 * time.Millisecond)
			h.Recover()
			time.Sleep(75 * time.Millisecond)
		}
	}()
	trickle := 0
	for done := false; !done; {
		select {
		case <-flapDone:
			done = true
		default:
			g := spinChain(t, fmt.Sprintf("trickle-%d", trickle), 25)
			if job, err := env.Submit(context.Background(), g); err == nil {
				jobs = append(jobs, job)
			} else if !errors.Is(err, ErrShed) {
				t.Errorf("trickle submit %d: %v", trickle, err)
			}
			trickle++
			time.Sleep(50 * time.Millisecond)
		}
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		for _, j := range jobs {
			if s := j.State(); s != JobDone && s != JobFailed && s != JobCanceled {
				t.Errorf("job %s stuck in %s", j.ID, s)
			}
		}
		t.Fatalf("drain: %v", err)
	}
	// Every accepted job had 7 healthy alternates: all must complete,
	// with the flap absorbed by rescheduling and breaker quarantine.
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Errorf("job %s (%s): %v [reschedules=%d failed_hosts=%v]",
				j.ID, j.State(), err, j.Reschedules(), j.FailedHosts())
		}
	}

	// Retries stayed inside the engine-wide budget: the token bucket
	// admits at most rate*elapsed + burst reservations, parked ones
	// having waited for their future token.
	retries, parked := env.Engine.RetryStats()
	elapsed := time.Since(start)
	if ceiling := budgetPerSec*elapsed.Seconds() + float64(budgetBurst) + float64(parked); float64(retries) > ceiling {
		t.Errorf("retries = %d over %v, above the budget ceiling %.0f", retries, elapsed, ceiling)
	}
	t.Logf("accepted=%d shed=%d trickle=%d retries=%d parked=%d over %v",
		len(jobs), shed, trickle, retries, parked, elapsed.Round(time.Millisecond))

	// The flapping host's breaker opened...
	trMu.Lock()
	opened := false
	for _, tr := range transitions {
		if tr.host == victim && tr.to == breaker.Open {
			opened = true
		}
	}
	trMu.Unlock()
	if !opened {
		t.Errorf("breaker never opened for the flapping host %s (transitions: %v)", victim, transitions)
	}
	// ...and with the host holding still, the open->half-open timeout
	// re-admits it for probe traffic.
	readmitted := func() bool { return env.Breakers.Allow(victim) }
	admitDeadline := time.Now().Add(5 * time.Second)
	for !readmitted() && time.Now().Before(admitDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !readmitted() {
		t.Errorf("host %s still quarantined (state %v) after the flap ended", victim, env.Breakers.State(victim))
	}

	// The storm has passed: the environment reports ready.
	if ready, reason := env.Ready(); !ready {
		t.Errorf("environment not ready after drain: %s", reason)
	}
}

// TestReadyzGates pins the readiness verdict deterministically on a
// synthetic clock: not-ready while recovery replay holds re-admitted
// jobs, not-ready while the recent shed rate is above threshold, ready
// again once the meter window slides past the storm.
func TestReadyzGates(t *testing.T) {
	now := time.Unix(0, 0)
	env, err := New(Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 3},
		Pipeline: PipelineConfig{Shed: ShedConfig{
			MaxSubmitWait: 50 * time.Millisecond,
			MeterWindow:   4 * time.Second,
			Now:           func() time.Time { return now },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	if ready, reason := env.Ready(); !ready {
		t.Fatalf("fresh environment not ready: %s", reason)
	}
	// Recovery replay pending: not ready until the last adopted job is
	// claimed (noteReplayDone decrements the gauge).
	env.pipe.recoveryPending.Store(2)
	if ready, reason := env.Ready(); ready || reason == "" {
		t.Fatalf("Ready() = %v (%q) with replay pending, want not-ready with a reason", ready, reason)
	}
	env.pipe.recoveryPending.Store(0)
	if ready, _ := env.Ready(); !ready {
		t.Fatal("still not ready after replay drained")
	}

	// A shed storm: 4 sheds, 1 accept inside the window trips the
	// default 0.5 threshold with the >= 4 sample floor.
	for i := 0; i < 4; i++ {
		env.pipe.meter.record(true)
	}
	env.pipe.meter.record(false)
	if ready, reason := env.Ready(); ready {
		t.Fatalf("ready while shedding 80%% of recent submissions (%s)", reason)
	}
	// The synthetic clock slides the meter window past the storm.
	now = now.Add(5 * time.Second)
	if ready, reason := env.Ready(); !ready {
		t.Fatalf("not ready after the shed window slid past: %s", reason)
	}
}

// TestReadyzDuringRecoveryReplay drives the replay gate end to end on a
// durable store: a restart with a serialized pipeline holds re-admitted
// jobs in the queue behind a long-running recovered job, so the
// environment reports not-ready while the replay backlog drains and
// ready once it has.
func TestReadyzDuringRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	env, err := New(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	long, err := env.Submit(ctx, spinJobGraph("long", 2500), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, JobRunning)
	for i := 0; i < 2; i++ {
		if _, err := env.Submit(ctx, spinJobGraph(fmt.Sprintf("backlog-%d", i), 1), WithOwner("bob")); err != nil {
			t.Fatal(err)
		}
	}
	env.Crash()

	env2, err := New(durableCfg(dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer env2.Close()
	// The single worker re-dispatches the long job onto the one run slot
	// and parks behind it, so at least one re-admitted job sits in the
	// replay backlog for the length of the long job's re-run.
	if ready, reason := env2.Ready(); ready {
		t.Fatal("ready while the recovery replay backlog is still queued")
	} else if reason == "" {
		t.Fatal("not-ready verdict carries no reason")
	}
	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env2.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if ready, reason := env2.Ready(); !ready {
		t.Fatalf("not ready after the replay drained: %s", reason)
	}
}

// TestEditorShed503RetryAfter pins the HTTP overload vocabulary: a shed
// submission surfaces as 503 with a Retry-After header and a shed_reason
// field — distinguishable from the bare 503 of a schedule-only server —
// and GET /v1/hosts reports every host with its breaker state.
func TestEditorShed503RetryAfter(t *testing.T) {
	env, err := New(Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 11, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{
			QueueDepth: 2, SchedulerWorkers: 1, MaxConcurrentRuns: 1,
			Shed: ShedConfig{MaxSubmitWait: 50 * time.Millisecond, RetryAfter: 2 * time.Second},
		},
		StartBreakers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ts := httptest.NewServer(env.EditorServer(true, 0).Handler())
	defer ts.Close()
	c := newJobsClient(t, ts.URL, "user_k", "vdce")
	ctx := context.Background()

	// Saturate: the run slot held, the worker parked behind it, the
	// queue full.
	hold, err := env.Submit(ctx, spinJobGraph("hold", 2500), WithOwner("user_k"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hold, JobRunning)
	for i := 0; i < 3; i++ {
		if _, err := env.Submit(ctx, spinJobGraph(fmt.Sprintf("fill-%d", i), 1), WithOwner("user_k")); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}

	appID := c.importApp(t, 0)
	req, err := http.NewRequest("POST", ts.URL+"/v1/apps/"+appID+"/submit", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit = %d %v, want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\" (the configured 2s hint)", got)
	}
	if reason, _ := body["shed_reason"].(string); reason != ShedQueueFull {
		t.Errorf("shed_reason = %v, want %q", body["shed_reason"], ShedQueueFull)
	}
	if msg, _ := body["error"].(string); msg == "" {
		t.Error("shed 503 carries no error message")
	}

	// The hosts surface rides the same mux: every testbed host reported,
	// breakers closed on a healthy site.
	hosts := c.do("GET", "/v1/hosts", nil, http.StatusOK)
	list, _ := hosts["hosts"].([]any)
	if len(list) != len(env.TB.AllHosts()) {
		t.Fatalf("GET /v1/hosts reported %d hosts, want %d", len(list), len(env.TB.AllHosts()))
	}
	for _, raw := range list {
		h, _ := raw.(map[string]any)
		if h["breaker"] != "closed" {
			t.Errorf("host %v breaker = %v, want closed", h["host"], h["breaker"])
		}
		if up, _ := h["up"].(bool); !up {
			t.Errorf("host %v reported down on a healthy testbed", h["host"])
		}
	}

	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
