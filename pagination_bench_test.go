package vdce

// BenchmarkListCursorDeepBoard quantifies the PR 6 pagination change on
// a 100k-job board: keyset (cursor) pages cost the same at any depth —
// binary search to the resume point plus one page of snapshots — while
// the deprecated offset path materializes and sorts the whole board per
// request, so even its "first" page pays O(board). The acceptance bar
// is the cursor last page landing within 2x of the cursor first page.
//
//	go test -bench BenchmarkListCursorDeepBoard -run '^$' .

import (
	"fmt"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/jobsapi"
	"vdce/internal/testbed"
)

// seedDeepBoard registers n synthetic terminal jobs directly in the
// pipeline's canonical-order registry. Driving 100k jobs through the
// real Submit path would be dominated by queue backpressure and
// execution, not the listing cost under measurement.
func seedDeepBoard(b *testing.B, env *Environment, n int) {
	b.Helper()
	g := afg.NewGraph("bench")
	base := time.Unix(1_000_000, 0)
	p := env.pipe
	p.mu.Lock()
	for i := 1; i <= n; i++ {
		j := &Job{
			ID:        fmt.Sprintf("job-%d", i),
			Owner:     "bench",
			Graph:     g,
			state:     JobDone,
			submitted: base.Add(time.Duration(i) * time.Millisecond),
			enqueued:  base.Add(time.Duration(i) * time.Millisecond),
			pipe:      p,
			done:      make(chan struct{}),
		}
		close(j.done)
		// Strictly increasing submission times keep p.jobs canonically
		// ordered with plain appends.
		p.jobs = append(p.jobs, j)
		p.byID[j.ID] = j
	}
	p.mu.Unlock()
}

func BenchmarkListCursorDeepBoard(b *testing.B) {
	const boardN, page = 100_000, 100
	env, err := New(Config{
		Testbed:  testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 1},
		Pipeline: PipelineConfig{MaxRetainedJobs: boardN + 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	seedDeepBoard(b, env, boardN)

	// The cursor that resumes just before the final page.
	base := time.Unix(1_000_000, 0)
	lastPageAfter := jobsapi.Cursor{
		Submitted: base.Add(time.Duration(boardN-page) * time.Millisecond).UnixNano(),
		ID:        fmt.Sprintf("job-%d", boardN-page),
	}

	b.Run("cursor-first-page", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			jobs, more := env.ListJobsAfter("", "", jobsapi.Cursor{}, page)
			if len(jobs) != page || !more {
				b.Fatalf("first page = %d rows more=%v", len(jobs), more)
			}
		}
	})
	b.Run("cursor-last-page", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			jobs, more := env.ListJobsAfter("", "", lastPageAfter, page)
			if len(jobs) != page || more {
				b.Fatalf("last page = %d rows more=%v", len(jobs), more)
			}
		}
	})
	// The offset path's cost is identical at any offset: it materializes
	// the entire filtered board before slicing, which is exactly what the
	// cursor path retires.
	b.Run("offset-first-page", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			jobs := env.ListJobs("", "")
			if len(jobs[:page]) != page {
				b.Fatal("short page")
			}
		}
	})
	b.Run("offset-last-page", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			jobs := env.ListJobs("", "")
			if len(jobs[boardN-page:]) != page {
				b.Fatal("short page")
			}
		}
	})
}
