package vdce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/exec"
	"vdce/internal/services"
)

// PipelineConfig sizes the concurrent submission pipeline. Zero fields
// take the listed defaults.
type PipelineConfig struct {
	// QueueDepth bounds the admission queue; Submit blocks (up to its
	// context) while the queue is full. Default 64.
	QueueDepth int
	// SchedulerWorkers is how many scheduler workers run core.Scheduler
	// rounds concurrently. Each job carries a home site — round-robin
	// across sites for Submit, the submitting site for SubmitOwned — so
	// concurrent rounds spread across sites regardless of worker count.
	// Default 4.
	SchedulerWorkers int
	// MaxConcurrentRuns bounds how many applications the execution engine
	// runs simultaneously. Default 2 * SchedulerWorkers.
	MaxConcurrentRuns int
	// MaxRetainedJobs bounds how many jobs the pipeline and the job
	// board remember; the oldest *terminal* jobs are evicted first, so a
	// long-running server does not grow without bound. Default 1024.
	MaxRetainedJobs int
}

func (c *PipelineConfig) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SchedulerWorkers <= 0 {
		c.SchedulerWorkers = 4
	}
	if c.MaxConcurrentRuns <= 0 {
		c.MaxConcurrentRuns = 2 * c.SchedulerWorkers
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
}

// JobState is a job's position in the submission lifecycle.
type JobState int32

const (
	// JobQueued: admitted, waiting for a scheduler worker.
	JobQueued JobState = iota
	// JobScheduling: a scheduler worker is running the site-scheduler
	// round (Fig. 2) for the job.
	JobScheduling
	// JobRunning: the execution engine is running the task graph.
	JobRunning
	// JobDone: every task completed; Result is available.
	JobDone
	// JobFailed: scheduling or execution failed permanently; Err is set.
	JobFailed
)

// String returns the services-layer state name.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return services.JobStateQueued
	case JobScheduling:
		return services.JobStateScheduling
	case JobRunning:
		return services.JobStateRunning
	case JobDone:
		return services.JobStateDone
	case JobFailed:
		return services.JobStateFailed
	default:
		return fmt.Sprintf("JobState(%d)", int32(s))
	}
}

// Job is one application moving through the submission pipeline.
type Job struct {
	// ID is the pipeline-assigned identifier ("job-<n>").
	ID string
	// Owner is the submitting user (may be empty for direct submissions).
	Owner string
	// Graph is the application flow graph being scheduled and executed.
	Graph *afg.Graph
	// K is the neighbor-site count used for the job's scheduling round.
	K int

	// home is the site index the scheduling round runs from: the
	// submitting site for owned jobs (access-domain clamps are relative
	// to it), round-robin across sites for anonymous submissions.
	home  int
	board *services.JobBoard
	done  chan struct{}

	mu        sync.Mutex
	state     JobState
	table     *core.AllocationTable
	result    *exec.Result
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Table returns the resource allocation table once scheduling finished,
// else nil.
func (j *Job) Table() *core.AllocationTable {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table
}

// Result returns the execution result once the job is done, else nil.
func (j *Job) Result() *exec.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Err returns the terminal error of a failed job, else nil.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state or ctx ends. It
// returns the job's terminal error (nil when the job succeeded).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-j.done:
		return j.Err()
	}
}

// Status snapshots the job for the monitoring board.
func (j *Job) Status() services.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := services.JobStatus{
		ID:          j.ID,
		App:         j.Graph.Name,
		Owner:       j.Owner,
		State:       j.state.String(),
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// transition moves the job to a non-terminal state and publishes it.
func (j *Job) transition(s JobState) {
	j.mu.Lock()
	j.state = s
	if s == JobRunning && j.started.IsZero() {
		j.started = time.Now()
	}
	j.mu.Unlock()
	j.publish()
}

// setTable records the scheduling artifact.
func (j *Job) setTable(t *core.AllocationTable) {
	j.mu.Lock()
	j.table = t
	j.mu.Unlock()
}

// complete marks the job done with its execution result.
func (j *Job) complete(res *exec.Result) {
	j.mu.Lock()
	j.state = JobDone
	j.result = res
	j.finished = time.Now()
	j.mu.Unlock()
	j.publish()
	close(j.done)
}

// fail marks the job failed. It is safe to call at most once.
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	j.publish()
	close(j.done)
}

func (j *Job) publish() {
	if j.board != nil {
		j.board.Update(j.Status())
	}
}

// Pipeline errors.
var (
	// ErrPipelineClosed is returned by Submit after the environment shut
	// down.
	ErrPipelineClosed = errors.New("vdce: submission pipeline closed")
)

// pipeline is the multi-tenant submission machinery behind
// Environment.Submit: a bounded admission queue, a pool of scheduler
// workers sharded across home sites, and a bounded concurrent dispatch
// path into the shared execution engine.
type pipeline struct {
	env    *Environment
	cfg    PipelineConfig
	ctx    context.Context
	queue  chan *Job
	runSem chan struct{}
	start  time.Time

	workerWG sync.WaitGroup // scheduler workers

	// svc caches each home site's scheduling services (local + remotes,
	// dialed over RPC when Site Managers run). Dial failures are not
	// cached, so a transient failure only affects jobs scheduled while
	// it persists.
	svcMu sync.Mutex
	svc   map[int]*siteSvc

	mu       sync.Mutex
	nextID   int
	nextHome int
	jobs     []*Job // every retained job, in submission order
	closed   bool
}

// siteSvc is one home site's resolved scheduling services.
type siteSvc struct {
	local   core.SiteService
	remotes []core.SiteService
}

// startPipeline launches the worker pool. ctx is the environment's
// lifetime context; cancellation stops the workers and fails queued and
// running jobs.
func startPipeline(ctx context.Context, env *Environment, cfg PipelineConfig) *pipeline {
	cfg.fillDefaults()
	p := &pipeline{
		env:    env,
		cfg:    cfg,
		ctx:    ctx,
		queue:  make(chan *Job, cfg.QueueDepth),
		runSem: make(chan struct{}, cfg.MaxConcurrentRuns),
		start:  time.Now(),
		svc:    make(map[int]*siteSvc),
	}
	for w := 0; w < cfg.SchedulerWorkers; w++ {
		p.workerWG.Add(1)
		go p.worker()
	}
	return p
}

// submit admits a job into the queue, blocking while it is full. home
// is the site index the scheduling round runs from; home < 0 picks
// sites round-robin (anonymous load spreading).
func (p *pipeline) submit(ctx context.Context, owner string, g *afg.Graph, k, home int) (*Job, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if home >= len(p.env.Sites) {
		return nil, fmt.Errorf("vdce: no site %d", home)
	}
	job := &Job{
		Owner:     owner,
		Graph:     g,
		K:         k,
		board:     p.env.Board,
		done:      make(chan struct{}),
		state:     JobQueued,
		submitted: time.Now(),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPipelineClosed
	}
	if home < 0 {
		home = p.nextHome
		p.nextHome = (p.nextHome + 1) % len(p.env.Sites)
	}
	job.home = home
	p.nextID++
	job.ID = fmt.Sprintf("job-%d", p.nextID)
	p.jobs = append(p.jobs, job)
	p.mu.Unlock()
	p.pruneRetained()
	job.publish()
	p.gauge()
	select {
	case p.queue <- job:
		return job, nil
	case <-ctx.Done():
		job.fail(ctx.Err())
		return nil, ctx.Err()
	case <-p.ctx.Done():
		job.fail(ErrPipelineClosed)
		return nil, ErrPipelineClosed
	}
}

// services resolves the scheduling services for home site i, caching
// successes. Concurrent rounds from different home sites share nothing
// but the internally locked repositories, so rounds on disjoint sites
// proceed in parallel.
func (p *pipeline) services(home int) (*siteSvc, error) {
	p.svcMu.Lock()
	if s, ok := p.svc[home]; ok {
		p.svcMu.Unlock()
		return s, nil
	}
	p.svcMu.Unlock()
	// Dial outside the lock so one slow site's dial never stalls rounds
	// for sites whose services are already cached. Two workers may race
	// to dial the same site; the loser's clients stay registered with
	// the environment and are released on Close.
	local, remotes, err := p.env.siteServices(home)
	if err != nil {
		return nil, err
	}
	s := &siteSvc{local: local, remotes: remotes}
	p.svcMu.Lock()
	if cached, ok := p.svc[home]; ok {
		s = cached
	} else {
		p.svc[home] = s
	}
	p.svcMu.Unlock()
	return s, nil
}

// worker pulls admitted jobs and runs their scheduling rounds, each
// from the job's home site.
func (p *pipeline) worker() {
	defer p.workerWG.Done()
	for {
		select {
		case <-p.ctx.Done():
			return
		case job := <-p.queue:
			p.process(job)
		}
	}
}

// process runs one job's scheduling round and dispatches its execution.
// The scheduling phase completes on the worker; execution is handed to
// a goroutine gated by the run semaphore so the worker can keep
// scheduling while earlier jobs still execute.
func (p *pipeline) process(job *Job) {
	job.transition(JobScheduling)
	p.gauge()
	svc, err := p.services(job.home)
	if err != nil {
		job.fail(fmt.Errorf("vdce: scheduling services for site %d: %w", job.home, err))
		p.gauge()
		return
	}
	sched := core.NewScheduler(svc.local, svc.remotes, p.env.Net, job.K)
	cost, err := p.env.CostFunc(job.Graph)
	if err != nil {
		job.fail(err)
		p.gauge()
		return
	}
	table, err := sched.Schedule(job.Graph, cost)
	if err != nil {
		job.fail(err)
		p.gauge()
		return
	}
	job.setTable(table)

	// Dispatch: the worker waits for an execution slot before handing
	// the job to its execution goroutine. This is deliberate
	// backpressure — with the engine saturated, workers park here, the
	// admission queue fills, and Submit blocks — so the total number of
	// admitted-but-unfinished jobs stays bounded by QueueDepth +
	// SchedulerWorkers + MaxConcurrentRuns. A job waiting for a slot
	// remains in the scheduling state (it is still in a worker's hands).
	select {
	case p.runSem <- struct{}{}:
	case <-p.ctx.Done():
		job.fail(ErrPipelineClosed)
		p.gauge()
		return
	}
	go func() {
		defer func() { <-p.runSem }()
		job.transition(JobRunning)
		p.gauge()
		res, err := p.env.Engine.Execute(p.ctx, job.Graph, table)
		if err != nil {
			job.fail(err)
		} else {
			job.complete(res)
		}
		p.gauge()
	}()
}

// gauge mirrors the in-flight job count into the visualization service,
// the same channel the workload series use.
func (p *pipeline) gauge() {
	if p.env.Metrics != nil && p.env.Board != nil {
		p.env.Metrics.Add("jobs:in-flight", time.Since(p.start), float64(p.env.Board.InFlight()))
	}
}

// stop fails every queued job and waits for in-flight work to settle.
// The environment context must already be canceled.
func (p *pipeline) stop() {
	// Refuse new admissions first: any job registered before this point
	// is visible to allSettled below, so the drain loop will fail it.
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.workerWG.Wait()
	// Workers are gone; anything left in the queue will never be
	// scheduled. A submitter racing with shutdown may still deliver into
	// the queue after a drain pass, so keep draining until every admitted
	// job has reached a terminal state.
	for {
		for {
			select {
			case job := <-p.queue:
				job.fail(ErrPipelineClosed)
				continue
			default:
			}
			break
		}
		if p.allSettled() {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// pruneRetained evicts the oldest terminal jobs beyond the retention
// cap, from both the pipeline's registry and the job board, so a
// long-running server does not accumulate finished jobs forever.
// In-flight jobs are never evicted.
func (p *pipeline) pruneRetained() {
	var evicted []string
	p.mu.Lock()
	over := len(p.jobs) - p.cfg.MaxRetainedJobs
	if over > 0 {
		kept := make([]*Job, 0, len(p.jobs))
		for _, j := range p.jobs {
			if over > 0 {
				select {
				case <-j.done:
					evicted = append(evicted, j.ID)
					over--
					continue
				default:
				}
			}
			kept = append(kept, j)
		}
		p.jobs = kept
	}
	p.mu.Unlock()
	for _, id := range evicted {
		p.env.Board.Delete(id)
	}
}

// allSettled reports whether every admitted job is terminal.
func (p *pipeline) allSettled() bool {
	p.mu.Lock()
	jobs := append([]*Job(nil), p.jobs...)
	p.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.done:
		default:
			return false
		}
	}
	return true
}

// Submit admits an application into the environment's concurrent
// submission pipeline and returns its Job handle immediately. The job
// is scheduled by the worker pool — home sites rotate round-robin so
// concurrent rounds shard across sites — and executed on the shared
// testbed; use Job.Wait or Job.Done to observe completion. Submit
// blocks only while the bounded admission queue is full (backpressure),
// honoring ctx.
func (env *Environment) Submit(ctx context.Context, g *afg.Graph, k int) (*Job, error) {
	return env.pipe.submit(ctx, "", g, k, -1)
}

// SubmitOwned is Submit for a named user at the submitting site
// (site 0, where the accounts live): the owner's access domain clamps
// the neighbor-site count exactly as in the one-shot path, so local
// users stay on the submitting site and campus users reach at most its
// two nearest neighbors.
func (env *Environment) SubmitOwned(ctx context.Context, owner string, g *afg.Graph, k int) (*Job, error) {
	return env.pipe.submit(ctx, owner, g, env.ClampK(owner, k), 0)
}

// Jobs returns the status of every submitted job in submission order.
func (env *Environment) Jobs() []services.JobStatus {
	return env.Board.List()
}

// Drain blocks until every job admitted so far has reached a terminal
// state, or ctx ends. Jobs submitted after Drain starts are not waited
// for.
func (env *Environment) Drain(ctx context.Context) error {
	env.pipe.mu.Lock()
	jobs := append([]*Job(nil), env.pipe.jobs...)
	env.pipe.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-j.done:
		}
	}
	return nil
}
