package vdce

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vdce/internal/afg"
	"vdce/internal/core"
	"vdce/internal/exec"
	"vdce/internal/jobsapi"
	"vdce/internal/services"
	"vdce/internal/store"
)

// PipelineConfig sizes the concurrent submission pipeline. Zero fields
// take the listed defaults.
type PipelineConfig struct {
	// QueueDepth bounds the admission queue; Submit blocks (up to its
	// context) while the queue is full. Default 64.
	QueueDepth int
	// SchedulerWorkers is how many scheduler workers run core.Scheduler
	// rounds concurrently. Each job carries a home site — round-robin
	// across sites for anonymous submissions, the submitting site for
	// owned ones — so concurrent rounds spread across sites regardless of
	// worker count. Default 4.
	SchedulerWorkers int
	// MaxConcurrentRuns bounds how many applications the execution engine
	// runs simultaneously. Default 2 * SchedulerWorkers.
	MaxConcurrentRuns int
	// MaxRetainedJobs bounds how many jobs the pipeline and the job
	// board remember; the oldest *terminal* jobs are evicted first, so a
	// long-running server does not grow without bound. Default 1024.
	MaxRetainedJobs int
	// AgingStep is the starvation-protection rate of the priority
	// admission queue: a queued job's effective priority rises by one
	// level per AgingStep of waiting, so a low-priority job eventually
	// overtakes a stream of higher-priority arrivals. Default 30s.
	AgingStep time.Duration
	// Quota bounds each owner's simultaneous use of the pipeline:
	// queued jobs (admission rejects with a QuotaError), in-flight jobs
	// (excess parks in the queue while other owners dispatch past it),
	// and concurrently held hosts (a scheduled job parks before
	// execution). Zero fields are unlimited.
	Quota QuotaConfig
	// EventBuffer bounds the job event broker: the replay ring serving
	// Last-Event-ID reconnects and each stream subscriber's delivery
	// buffer (a subscriber that falls further behind is evicted, never
	// allowed to block the board). Default jobsapi.DefaultEventBuffer.
	EventBuffer int
	// APIRate is the per-owner token-bucket request rate limit that
	// jobsapi mounts over this environment enforce at the mux (requests
	// over budget answer 429 with Retry-After). The zero value disables
	// rate limiting.
	APIRate jobsapi.RateLimitConfig
	// Shed enables adaptive load shedding at admission: bounded queue
	// waits, deadline-infeasibility estimates, and breaker-saturation
	// rejection, all surfaced as typed *ShedError (HTTP 503 +
	// Retry-After). The zero value keeps the legacy block-until-slot
	// behavior.
	Shed ShedConfig
	// DispatchBatch is how many fairly-arbitrated jobs one scheduler
	// worker drains from the admission queue per wakeup, amortizing the
	// queue lock and the wake token across the batch — at scale, one
	// terminal job no longer costs one lock round-trip and one wakeup
	// per dispatched job. A worker that drains a full batch re-arms
	// another idle worker before processing, so deep backlogs still
	// spread across all workers; with fewer eligible jobs than the
	// batch, one worker processes them in pop order (latency bounded by
	// batch size, so keep it small). Default 8; 1 restores per-job
	// handoff.
	DispatchBatch int
}

func (c *PipelineConfig) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SchedulerWorkers <= 0 {
		c.SchedulerWorkers = 4
	}
	if c.MaxConcurrentRuns <= 0 {
		c.MaxConcurrentRuns = 2 * c.SchedulerWorkers
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	if c.AgingStep <= 0 {
		c.AgingStep = 30 * time.Second
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = jobsapi.DefaultEventBuffer
	}
	if c.DispatchBatch <= 0 {
		c.DispatchBatch = 8
	}
	c.Shed.fillDefaults()
}

// JobState is a job's position in the submission lifecycle.
type JobState int32

const (
	// JobQueued: admitted, waiting for a scheduler worker.
	JobQueued JobState = iota
	// JobScheduling: a scheduler worker is running the site-scheduler
	// round (Fig. 2) for the job.
	JobScheduling
	// JobRunning: the execution engine is running the task graph.
	JobRunning
	// JobDone: every task completed; Result is available.
	JobDone
	// JobFailed: scheduling or execution failed permanently; Err is set.
	JobFailed
	// JobCanceled: the job was canceled — dropped from the admission
	// queue if it had not started, aborted through the execution engine's
	// cancellation path if it had. Err is ErrJobCanceled.
	JobCanceled
)

// String returns the services-layer state name.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return services.JobStateQueued
	case JobScheduling:
		return services.JobStateScheduling
	case JobRunning:
		return services.JobStateRunning
	case JobDone:
		return services.JobStateDone
	case JobFailed:
		return services.JobStateFailed
	case JobCanceled:
		return services.JobStateCanceled
	default:
		return fmt.Sprintf("JobState(%d)", int32(s))
	}
}

// Pipeline errors.
var (
	// ErrPipelineClosed is returned by Submit after the environment shut
	// down.
	ErrPipelineClosed = errors.New("vdce: submission pipeline closed")
	// ErrJobCanceled is the terminal error of a job ended by Cancel.
	ErrJobCanceled = errors.New("vdce: job canceled")
	// ErrJobDeadlineExceeded is the terminal error of a job whose
	// WithDeadline expired before it could finish. Deadline-expired
	// queued jobs are dropped before they reach a scheduler worker.
	ErrJobDeadlineExceeded = errors.New("vdce: job deadline exceeded")
)

// SubmitOption configures one submission. Options compose left to right;
// later options win on conflict.
type SubmitOption func(*submitOptions)

type submitOptions struct {
	owner       string
	priority    *int
	shareWeight *int
	deadline    time.Time
	home        int // -1 = round-robin (or site 0 for owned jobs)
	maxHosts    int
	labels      map[string]string
}

// WithOwner submits on behalf of a named user: the job schedules from
// the accounts site (site 0) unless WithHomeSite overrides it, the
// owner's access domain clamps the neighbor-site count exactly as in the
// one-shot path, and — unless WithPriority overrides it — the job's
// priority defaults to the owner's user-account priority.
func WithOwner(owner string) SubmitOption {
	return func(o *submitOptions) { o.owner = owner }
}

// WithPriority sets the job's base admission priority explicitly. Higher
// values are admitted first; equal effective priorities dequeue FIFO.
// Without it, owned jobs inherit the owner's user-account priority and
// anonymous jobs default to 0.
func WithPriority(p int) SubmitOption {
	return func(o *submitOptions) { o.priority = &p }
}

// MaxShareWeight caps an owner's fair-share weight. The weight field
// is client-settable on the HTTP surface, so — like the saturating
// admission-priority clamp — it must not let one caller assign itself
// an effectively infinite dispatch share: weights are clamped into
// [1, MaxShareWeight], bounding any owner's advantage at
// MaxShareWeight:1 while every other owner keeps a nonzero share.
const MaxShareWeight = 100

// WithShareWeight sets the owner's weighted-fair-queuing weight,
// clamped into [1, MaxShareWeight]. Across owners the admission queue
// drains in proportion to weight — an owner with weight 2 dispatches
// twice the jobs of a weight-1 owner over any backlogged interval —
// regardless of job priorities, which only order jobs within one
// owner. Without it, owned jobs default their weight from the owner's
// user-account priority and anonymous jobs weigh 1. The owner's
// latest submission's weight wins.
func WithShareWeight(w int) SubmitOption {
	return func(o *submitOptions) { o.shareWeight = &w }
}

// clampShareWeight saturates a weight into [1, MaxShareWeight].
func clampShareWeight(w int) int {
	if w < 1 {
		return 1
	}
	if w > MaxShareWeight {
		return MaxShareWeight
	}
	return w
}

// WithDeadline bounds the job's whole lifetime: a job still queued at the
// deadline is dropped before it reaches a scheduler worker, and a running
// job is aborted through the execution engine's cancellation path. The
// terminal error is ErrJobDeadlineExceeded.
func WithDeadline(t time.Time) SubmitOption {
	return func(o *submitOptions) { o.deadline = t }
}

// WithHomeSite pins the scheduling round to site index i instead of the
// default (round-robin for anonymous jobs, site 0 for owned jobs).
func WithHomeSite(i int) SubmitOption {
	return func(o *submitOptions) { o.home = i }
}

// WithMaxHosts sets k, the scheduler's nearest-neighbor site count
// (Fig. 2 step 2): how far beyond the home site the job's tasks may be
// placed. Owned jobs still have k clamped by the owner's access domain.
// Default 0 (home site only).
func WithMaxHosts(k int) SubmitOption {
	return func(o *submitOptions) { o.maxHosts = k }
}

// WithLabels attaches caller metadata to the job; labels are carried on
// the Job handle and surfaced verbatim by the job-control API.
func WithLabels(labels map[string]string) SubmitOption {
	return func(o *submitOptions) {
		if o.labels == nil {
			o.labels = make(map[string]string, len(labels))
		}
		for k, v := range labels {
			o.labels[k] = v
		}
	}
}

// Job is one application moving through the submission pipeline.
//
// Lifecycle contract: Done returns a channel that is closed exactly once,
// when the job reaches a terminal state (done, failed, or canceled); no
// state transitions happen after it closes. Wait blocks on that channel
// and returns the job's own terminal error — nil for success,
// ErrJobCanceled after Cancel, ErrJobDeadlineExceeded after a deadline
// expiry, the scheduling/execution error otherwise. When Wait's ctx ends
// first, Wait returns the ctx error, but a job that is already terminal
// always reports its own error even if ctx is also done.
type Job struct {
	// ID is the pipeline-assigned identifier ("job-<n>").
	ID string
	// Owner is the submitting user (may be empty for direct submissions).
	Owner string
	// Graph is the application flow graph being scheduled and executed.
	Graph *afg.Graph
	// K is the neighbor-site count used for the job's scheduling round
	// (WithMaxHosts after any access-domain clamp).
	K int
	// Labels is the caller metadata attached with WithLabels (may be nil).
	Labels map[string]string

	// home is the site index the scheduling round runs from.
	home int
	// priority is the base admission priority; the effective priority
	// ages upward while the job waits (see admitQueue).
	priority int
	// shareWeight is the owner's resolved fair-share weight carried by
	// this submission (>= 1; the owner's latest submission wins).
	shareWeight int
	// usageCharged, hostsCharged, and chargedHosts are the admission
	// queue's quota ledger for this job (in-flight charge from pop, host
	// charges from dispatch plus any mid-run replacement hosts); all are
	// guarded by the admission queue's lock, not j.mu.
	usageCharged bool
	hostsCharged int
	chargedHosts map[string]bool
	// hostParked marks a job parked on the held-hosts cap (guarded by
	// the admission queue's lock); while set, the owner is skipped by
	// pop so parked dispatches stay bounded at one per owner.
	hostParked bool
	// deadline bounds the job's lifetime; zero means none.
	deadline time.Time
	// enqueued is when the job entered the admission queue. For jobs
	// re-adopted from the durable store this is the original submission
	// time, so the aging rank — and with it the within-owner dequeue
	// order — carries across the restart unchanged.
	enqueued time.Time
	// recovered marks a job that was in flight when a previous
	// incarnation of the control plane died and was re-adopted from the
	// durable store on boot (immutable after registration).
	recovered bool
	board     *services.JobBoard
	pipe      *pipeline
	done      chan struct{}
	// cancelCh closes on the first Cancel call, unblocking dispatch waits.
	cancelCh chan struct{}
	// expiry fires while the job is still queued at its deadline, so an
	// expired job releases its queue slot and its waiters immediately
	// instead of lingering until a worker pops it.
	expiry *time.Timer

	mu              sync.Mutex
	state           JobState
	cancelRequested bool
	runCancel       context.CancelFunc
	table           *core.AllocationTable
	result          *exec.Result
	err             error
	submitted       time.Time
	started         time.Time
	finished        time.Time
	// admitted/scheduled/dispatched complete the phase-boundary set
	// (submitted/started/finished above): admission-queue entry, schedule
	// completion, and run-slot dispatch. Zero until crossed.
	admitted   time.Time
	scheduled  time.Time
	dispatched time.Time
	// trace is the append-ordered lifecycle trace behind
	// GET /v1/jobs/{id}/trace: every phase boundary plus park, reschedule,
	// and failure point events, timestamps clamped non-decreasing.
	trace []services.TraceEvent
	// recovery observability, fed live by the engine's event stream:
	// how many times a task of this job was rescheduled mid-run, and the
	// distinct hosts lost to failure (first-observed order).
	reschedules int
	failedHosts []string
	failedSeen  map[string]bool
	// hostsHeld mirrors hostsCharged under j.mu for Status snapshots:
	// the distinct testbed hosts this job's placement holds while it is
	// dispatched, zeroed when it terminalizes.
	hostsHeld int
	// replayPending marks a job re-admitted by the boot replay that has
	// not yet reached a scheduler worker or a terminal state; it backs
	// the pipeline's recovery-backlog gauge behind /readyz.
	replayPending bool
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Priority returns the job's base admission priority.
func (j *Job) Priority() int { return j.priority }

// ShareWeight returns the owner fair-share weight this submission
// carried (>= 1).
func (j *Job) ShareWeight() int { return j.shareWeight }

// Deadline returns the job's deadline and whether one was set.
func (j *Job) Deadline() (time.Time, bool) { return j.deadline, !j.deadline.IsZero() }

// Table returns the resource allocation table once scheduling finished,
// else nil.
func (j *Job) Table() *core.AllocationTable {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table
}

// Result returns the execution result once the job is done, else nil.
func (j *Job) Result() *exec.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Err returns the terminal error of a failed or canceled job, else nil.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel closed when the job reaches a terminal state
// (done, failed, or canceled). After it closes, State, Err, Table, and
// Result are final.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state or ctx ends. It
// returns the job's own terminal error (nil when the job succeeded,
// ErrJobCanceled / ErrJobDeadlineExceeded for canceled and expired jobs);
// a job that is already terminal reports its own error even when ctx is
// also done. Only when ctx ends while the job is still in flight does
// Wait return the ctx error.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	default:
	}
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		// The job may have finished in the same instant; prefer its own
		// terminal error over the ctx error.
		select {
		case <-j.done:
			return j.Err()
		default:
		}
		return ctx.Err()
	}
}

// Cancel requests cancellation. A queued job is dropped from the
// admission queue immediately; a scheduling or running job is aborted
// through the execution engine's cancellation path and terminalizes
// shortly after. Canceling a terminal job is a no-op. The terminal state
// is JobCanceled with Err() == ErrJobCanceled.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		j.mu.Unlock()
		return
	}
	already := j.cancelRequested
	j.cancelRequested = true
	if !already {
		close(j.cancelCh)
	}
	queued := j.state == JobQueued
	cancel := j.runCancel
	j.mu.Unlock()
	if queued {
		// Drop it from the admission queue eagerly, freeing its slot. If
		// a worker popped it first, the worker's claim check observes the
		// cancel request instead and exactly one of us terminalizes.
		if j.pipe != nil && j.pipe.admit.remove(j.ID) {
			j.pipe.releaseSlot()
		}
		j.terminalize(JobCanceled, ErrJobCanceled, nil)
		return
	}
	if cancel != nil {
		cancel()
	}
}

// Reschedules reports how many times the engine moved one of the job's
// tasks mid-run; it grows live while the job executes.
func (j *Job) Reschedules() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reschedules
}

// FailedHosts returns the distinct hosts whose failure forced one of
// the job's tasks to move, in first-observed order.
func (j *Job) FailedHosts() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.failedHosts...)
}

// metrics returns the pipeline's resolved metric handles, or nil for
// jobs detached from a live pipeline (some tests).
func (j *Job) metrics() *envMetrics {
	if j.pipe == nil || j.pipe.env == nil {
		return nil
	}
	return j.pipe.env.obsM
}

// logger returns the pipeline's structured logger, or a discarding one.
func (j *Job) logger() *slog.Logger {
	if j.pipe == nil || j.pipe.env == nil || j.pipe.env.log == nil {
		return discardLog
	}
	return j.pipe.env.log
}

// stampLocked appends one trace event under j.mu, clamping the
// timestamp so the trace is non-decreasing even across wall-clock
// steps (recovered jobs mix persisted wall times with fresh monotonic
// readings). Returns the timestamp actually recorded.
func (j *Job) stampLocked(event, detail string, at time.Time) time.Time {
	if n := len(j.trace); n > 0 && at.Before(j.trace[n-1].At) {
		at = j.trace[n-1].At
	}
	j.trace = append(j.trace, services.TraceEvent{At: at, Event: event, Detail: detail})
	return at
}

// stampEvent appends a point event (park, unpark, reschedule, failure)
// to the trace.
func (j *Job) stampEvent(event, detail string) {
	j.mu.Lock()
	j.stampLocked(event, detail, time.Now())
	j.mu.Unlock()
}

// stampAdmitted records admission-queue entry at the given instant and
// returns the submit-wait duration (zero when unknowable).
func (j *Job) stampAdmitted(at time.Time) time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.admitted = at
	j.stampLocked(services.PhaseAdmitted, "", at)
	if j.submitted.IsZero() {
		return 0
	}
	if d := at.Sub(j.submitted); d > 0 {
		return d
	}
	return 0
}

// stampScheduled records schedule completion and observes the
// queue-wait phase (admitted → scheduled).
func (j *Job) stampScheduled() {
	now := time.Now()
	j.mu.Lock()
	j.scheduled = now
	j.stampLocked(services.PhaseScheduled, "", now)
	wait := time.Duration(0)
	if !j.admitted.IsZero() {
		wait = now.Sub(j.admitted)
	}
	j.mu.Unlock()
	if m := j.metrics(); m != nil && wait > 0 {
		m.phaseQueueWait.Observe(wait.Seconds())
	}
}

// stampDispatched records run-slot dispatch and observes the
// dispatch-wait phase (scheduled → dispatched, including host-quota
// parks and run-slot waits).
func (j *Job) stampDispatched() {
	now := time.Now()
	j.mu.Lock()
	j.dispatched = now
	j.stampLocked(services.PhaseDispatched, "", now)
	wait := time.Duration(0)
	if !j.scheduled.IsZero() {
		wait = now.Sub(j.scheduled)
	}
	j.mu.Unlock()
	if m := j.metrics(); m != nil && wait > 0 {
		m.phaseDispatchWait.Observe(wait.Seconds())
	}
}

// timingsLocked derives the phase-boundary block from the stamps;
// caller holds j.mu.
func (j *Job) timingsLocked() *services.JobTimings {
	secs := func(from, to time.Time) float64 {
		if from.IsZero() || to.IsZero() {
			return 0
		}
		if d := to.Sub(from); d > 0 {
			return d.Seconds()
		}
		return 0
	}
	return &services.JobTimings{
		SubmittedAt:         j.submitted,
		AdmittedAt:          j.admitted,
		ScheduledAt:         j.scheduled,
		DispatchedAt:        j.dispatched,
		RunningAt:           j.started,
		FinishedAt:          j.finished,
		SubmitWaitSeconds:   secs(j.submitted, j.admitted),
		QueueWaitSeconds:    secs(j.admitted, j.scheduled),
		DispatchWaitSeconds: secs(j.scheduled, j.dispatched),
		RunSeconds:          secs(j.started, j.finished),
		TotalSeconds:        secs(j.submitted, j.finished),
	}
}

// Trace returns the job's ordered lifecycle trace: every phase
// boundary crossed so far plus recovery point events, with the derived
// timings block.
func (j *Job) Trace() services.JobTrace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return services.JobTrace{
		ID:      j.ID,
		Owner:   j.Owner,
		State:   j.state.String(),
		Events:  append([]services.TraceEvent(nil), j.trace...),
		Timings: j.timingsLocked(),
	}
}

// execEvent consumes the engine's recovery event stream for this job,
// keeping the status' reschedule/failed-host view live while the run is
// still in flight. A reschedule's replacement host is charged against
// the owner's held-hosts ledger so quota accounting tracks where the
// job actually runs, not just where it was dispatched.
func (j *Job) execEvent(ev exec.Event) {
	var typ string
	j.mu.Lock()
	switch ev.Type {
	case exec.EventRescheduled:
		j.reschedules++
		j.stampLocked("rescheduled", ev.Host, time.Now())
		typ = jobsapi.EventRescheduled
	case exec.EventHostFailure:
		if j.failedSeen == nil {
			j.failedSeen = make(map[string]bool)
		}
		if !j.failedSeen[ev.Host] {
			j.failedSeen[ev.Host] = true
			j.failedHosts = append(j.failedHosts, ev.Host)
		}
		j.stampLocked("host-failure", ev.Host, time.Now())
		typ = jobsapi.EventHostFailure
	default:
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	if m := j.metrics(); m != nil {
		switch ev.Type {
		case exec.EventRescheduled:
			m.reschedules.Inc()
		case exec.EventHostFailure:
			m.hostFailures.Inc()
		}
	}
	if ev.Type == exec.EventRescheduled && j.pipe != nil {
		hosts := ev.Hosts
		if len(hosts) == 0 {
			hosts = []string{ev.Host}
		}
		for _, h := range hosts {
			if n, changed := j.pipe.admit.chargeReplacementHost(j, h); changed {
				j.noteHostsHeld(n)
			}
		}
	}
	// Recovery flows to the stream typed, so subscribers see "a task
	// moved" distinctly from ordinary lifecycle churn.
	j.publishEvent(typ)
}

// Status snapshots the job for the monitoring board and the job-control
// API. Queued jobs carry their live admission-queue position.
func (j *Job) Status() services.JobStatus {
	s := j.statusSnapshot()
	if s.State == services.JobStateQueued && j.pipe != nil {
		s.QueuePosition = j.pipe.admit.position(j.ID)
	}
	return s
}

// statusSnapshot is Status without the admission-queue position lookup;
// listing paths batch-compute positions in one arbitration replay
// instead of one per job.
func (j *Job) statusSnapshot() services.JobStatus {
	j.mu.Lock()
	s := services.JobStatus{
		ID:          j.ID,
		App:         j.Graph.Name,
		Owner:       j.Owner,
		State:       j.state.String(),
		Priority:    j.priority,
		ShareWeight: j.shareWeight,
		HostsHeld:   j.hostsHeld,
		Labels:      j.Labels,
		Reschedules: j.reschedules,
		FailedHosts: append([]string(nil), j.failedHosts...),
		Recovered:   j.recovered,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Timings:     j.timingsLocked(),
	}
	if !j.deadline.IsZero() {
		s.Deadline = j.deadline
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	j.mu.Unlock()
	return s
}

// expireQueued is the deadline timer's callback: a job still queued at
// its deadline is dropped — removed from the admission queue, its slot
// released — exactly like an eager Cancel, but terminalizing as failed
// with ErrJobDeadlineExceeded. Jobs already claimed by a worker are
// covered by the run context's deadline instead.
func (j *Job) expireQueued() {
	j.mu.Lock()
	if j.state != JobQueued || j.cancelRequested {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	if j.pipe != nil && j.pipe.admit.remove(j.ID) {
		j.pipe.releaseSlot()
	}
	j.terminalize(JobFailed, ErrJobDeadlineExceeded, nil)
}

// claimForScheduling atomically moves a popped job from queued to
// scheduling. It returns false — terminalizing the job as appropriate —
// when the job was canceled while queued or its deadline already
// expired, so such jobs never reach a scheduling round.
func (j *Job) claimForScheduling() bool {
	j.mu.Lock()
	if j.state != JobQueued {
		// Cancel terminalized it between pop and claim.
		j.mu.Unlock()
		return false
	}
	if j.cancelRequested {
		j.mu.Unlock()
		j.terminalize(JobCanceled, ErrJobCanceled, nil)
		return false
	}
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		j.mu.Unlock()
		j.terminalize(JobFailed, ErrJobDeadlineExceeded, nil)
		return false
	}
	j.state = JobScheduling
	j.mu.Unlock()
	j.noteReplayDone()
	j.publish()
	if j.pipe != nil {
		j.pipe.persistState(j)
	}
	return true
}

// noteReplayDone clears the job's recovery-replay pending mark and
// decrements the pipeline's replay-backlog gauge; idempotent, a no-op
// for jobs the boot replay never touched.
func (j *Job) noteReplayDone() {
	j.mu.Lock()
	pending := j.replayPending
	j.replayPending = false
	j.mu.Unlock()
	if pending && j.pipe != nil {
		j.pipe.recoveryPending.Add(-1)
	}
}

// setRunCancel installs the running phase's cancel function. It returns
// false when cancellation was already requested, in which case the
// caller must not start the execution.
func (j *Job) setRunCancel(c context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelRequested {
		return false
	}
	j.runCancel = c
	return true
}

// transition moves the job to a non-terminal state and publishes it.
func (j *Job) transition(s JobState) {
	j.mu.Lock()
	j.state = s
	if s == JobRunning && j.started.IsZero() {
		j.started = j.stampLocked(services.PhaseRunning, "", time.Now())
	}
	j.mu.Unlock()
	j.publish()
	if j.pipe != nil {
		j.pipe.persistState(j)
	}
}

// setTable records the scheduling artifact.
func (j *Job) setTable(t *core.AllocationTable) {
	j.mu.Lock()
	j.table = t
	j.mu.Unlock()
}

// terminalize moves the job to a terminal state exactly once; later
// calls (a Cancel racing a worker, shutdown racing a deadline) are
// no-ops. It reports whether this call won.
func (j *Job) terminalize(state JobState, err error, res *exec.Result) bool {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = err
	j.result = res
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	j.finished = j.stampLocked(state.String(), detail, time.Now())
	j.hostsHeld = 0
	expiry := j.expiry
	runDur := time.Duration(0)
	if !j.started.IsZero() {
		runDur = j.finished.Sub(j.started)
	}
	totalDur := time.Duration(0)
	if !j.submitted.IsZero() {
		totalDur = j.finished.Sub(j.submitted)
	}
	j.mu.Unlock()
	if expiry != nil {
		expiry.Stop()
	}
	if m := j.metrics(); m != nil {
		if runDur > 0 {
			m.phaseRun.Observe(runDur.Seconds())
		}
		if totalDur > 0 {
			m.phaseTotal.Observe(totalDur.Seconds())
		}
		switch state {
		case JobDone:
			m.completedDone.Inc()
		case JobFailed:
			m.completedFailed.Inc()
		case JobCanceled:
			m.completedCanceled.Inc()
		}
	}
	if err != nil {
		j.logger().Warn("job finished", "job_id", j.ID, "owner", j.Owner,
			"state", state.String(), "error", err.Error(), "total_seconds", totalDur.Seconds())
	} else {
		j.logger().Info("job finished", "job_id", j.ID, "owner", j.Owner,
			"state", state.String(), "total_seconds", totalDur.Seconds())
	}
	j.noteReplayDone()
	// Return the job's in-flight and held-host quota charges before the
	// final status publishes, so owner counters never show a terminal
	// job as still consuming capacity.
	if j.pipe != nil {
		j.pipe.jobReleased(j)
	}
	j.publish()
	if j.pipe != nil {
		j.pipe.persistState(j)
	}
	close(j.done)
	return true
}

// complete marks the job done with its execution result.
func (j *Job) complete(res *exec.Result) { j.terminalize(JobDone, nil, res) }

// fail marks the job failed.
func (j *Job) fail(err error) { j.terminalize(JobFailed, err, nil) }

func (j *Job) publish() { j.publishEvent(jobsapi.EventState) }

// publishEvent snapshots the job once and pushes the status to both
// monitoring surfaces: the job board (pull: /v1/jobs) and the event
// broker (push: /v1/events and /v1/jobs/{id}/events), typed so stream
// consumers can tell lifecycle transitions from mid-run recovery.
func (j *Job) publishEvent(typ string) {
	s := j.Status()
	if j.board != nil {
		j.board.Update(s)
	}
	if j.pipe != nil && j.pipe.events != nil {
		j.pipe.events.Publish(typ, s)
	}
}

// pipeline is the multi-tenant submission machinery behind
// Environment.Submit: a bounded priority admission queue with aging, a
// pool of scheduler workers sharded across home sites, and a bounded
// concurrent dispatch path into the shared execution engine.
type pipeline struct {
	env    *Environment
	cfg    PipelineConfig
	ctx    context.Context
	admit  *admitQueue
	slots  chan struct{} // queue-capacity semaphore (cap QueueDepth)
	notify chan struct{} // wakes idle workers after pushes (cap QueueDepth)
	runSem chan struct{}
	start  time.Time
	// events is the job event broker behind the streaming API: every
	// lifecycle publication and engine recovery event fans out here with
	// a monotonic cursor.
	events *jobsapi.Broker
	// store is the durable control-plane log (nil = in-memory only, the
	// pre-StoreDir behavior byte for byte).
	store *store.Store
	// stopping suppresses persistence of shutdown-induced terminal
	// transitions: jobs failed with ErrPipelineClosed by a graceful stop
	// stay queued/running in the log, exactly what the next boot should
	// re-adopt.
	stopping atomic.Bool
	// recovery reports what the boot replay did (immutable after
	// startPipeline returns).
	recovery RecoveryReport
	// shed/meter implement adaptive load shedding: shed is the
	// normalized config, meter the sliding-window accept/shed counter
	// behind the /readyz shed-rate gate.
	shed  ShedConfig
	meter *shedMeter
	// recoveryPending counts re-admitted jobs that have not yet reached
	// a scheduler worker (or gone terminal); /readyz reports not-ready
	// while the replay backlog drains.
	recoveryPending atomic.Int64

	workerWG sync.WaitGroup // scheduler workers

	// svc caches each home site's scheduling services (local + remotes,
	// dialed over RPC when Site Managers run). Dial failures are not
	// cached, so a transient failure only affects jobs scheduled while
	// it persists.
	svcMu sync.Mutex
	svc   map[int]*siteSvc

	mu       sync.Mutex
	nextID   int
	nextHome int
	jobs     []*Job          // every retained job, in submission order
	byID     map[string]*Job // retained jobs indexed for the job API
	closed   bool
}

// siteSvc is one home site's resolved scheduling services.
type siteSvc struct {
	local   core.SiteService
	remotes []core.SiteService
}

// RecoveryReport summarizes what the boot replay of a durable store
// did: how many queued jobs were re-admitted, how many in-flight jobs
// were re-dispatched through the scheduling path, and how many terminal
// jobs were retained for the listing surfaces.
type RecoveryReport struct {
	// QueuedRecovered is how many jobs that were queued at the crash
	// were re-admitted with owner, priority, deadline, and share weight
	// intact.
	QueuedRecovered int
	// InFlightRedispatched is how many scheduling/running jobs were
	// re-adopted: re-queued at their original aging rank and
	// re-dispatched through a fresh scheduling round (their previous
	// partial progress died with the old incarnation's engine).
	InFlightRedispatched int
	// TerminalRetained is how many done/failed/canceled jobs were
	// restored to the board and listing surfaces.
	TerminalRetained int
	// DeadlineExpiredAtReplay is how many in-flight-or-queued jobs whose
	// deadline passed during the downtime were terminalized as
	// deadline-exceeded at replay instead of being re-dispatched.
	DeadlineExpiredAtReplay int
}

// startPipeline launches the worker pool. ctx is the environment's
// lifetime context; cancellation stops the workers and fails queued and
// running jobs. A non-nil st makes the pipeline durable: every
// lifecycle transition appends to it, and the state it recovered at
// Open is replayed — queued jobs back into the admission heaps,
// in-flight jobs re-dispatched, terminal jobs onto the board — before
// any worker runs.
func startPipeline(ctx context.Context, env *Environment, cfg PipelineConfig, st *store.Store) *pipeline {
	cfg.fillDefaults()
	p := &pipeline{
		env:    env,
		cfg:    cfg,
		ctx:    ctx,
		admit:  newAdmitQueue(cfg.AgingStep, cfg.Quota),
		runSem: make(chan struct{}, cfg.MaxConcurrentRuns),
		start:  time.Now(),
		store:  st,
		svc:    make(map[int]*siteSvc),
		byID:   make(map[string]*Job),
		shed:   cfg.Shed,
	}
	p.meter = newShedMeter(cfg.Shed.MeterWindow, cfg.Shed.Now)
	var adopt []*Job
	if st != nil {
		// The broker resumes above the persisted high-water cursor, so
		// every cursor issued before the crash is strictly below every new
		// one and a stale Last-Event-ID resume is detected as a gap (the
		// stream handlers re-synchronize the client) instead of silently
		// replaying the wrong events.
		p.events = jobsapi.NewBrokerAt(cfg.EventBuffer, st.EventCursor(), func(cur uint64) {
			st.NoteEventCursor(cur)
		})
		if env.Obs != nil {
			p.events.Instrument(env.Obs)
		}
		adopt = p.loadRecovered(st.Recovered())
	} else {
		p.events = jobsapi.NewBroker(cfg.EventBuffer)
		if env.Obs != nil {
			p.events.Instrument(env.Obs)
		}
	}
	// Queue capacity: the configured depth plus one slot per re-adopted
	// job, so recovery never deadlocks on its own backpressure when the
	// crash left more jobs queued than QueueDepth.
	p.slots = make(chan struct{}, cfg.QueueDepth+len(adopt))
	// One wakeup token per possible queued job: a lost wakeup could
	// otherwise leave a job queued while a worker sleeps. Stale tokens
	// only cost an idle worker one empty pop.
	p.notify = make(chan struct{}, cfg.QueueDepth+len(adopt))
	// Seed the admission heaps before any worker starts: adopt in
	// canonical submission order so seq tie-breaks reproduce the
	// pre-crash within-owner order exactly.
	p.recoveryPending.Store(int64(len(adopt)))
	for _, job := range adopt {
		job.mu.Lock()
		job.replayPending = true
		job.mu.Unlock()
		p.slots <- struct{}{}
		job.stampAdmitted(time.Now())
		p.admit.adoptQueued(job)
		if !job.deadline.IsZero() {
			job.mu.Lock()
			job.expiry = time.AfterFunc(time.Until(job.deadline), job.expireQueued)
			job.mu.Unlock()
		}
		if job.recovered {
			// In-flight at the crash: announce the re-adoption on the
			// stream so subscribers see the job return to the queue.
			job.publishEvent(jobsapi.EventRecovered)
		} else {
			job.publish()
		}
	}
	for w := 0; w < cfg.SchedulerWorkers; w++ {
		p.workerWG.Add(1)
		go p.worker()
	}
	return p
}

// loadRecovered folds the store's recovered state into the pipeline:
// owner-admin records into the admission queue, terminal jobs onto the
// board, and queued/in-flight jobs into handles ready for adoption —
// returned in canonical submission order. Runs before any worker
// starts, so no locks race it.
func (p *pipeline) loadRecovered(rs *store.State) []*Job {
	for _, rec := range rs.Owners {
		var caps *QuotaConfig
		if rec.HasCaps {
			caps = &QuotaConfig{
				MaxQueuedPerOwner:   rec.MaxQueued,
				MaxInFlightPerOwner: rec.MaxInFlight,
				MaxHostsPerOwner:    rec.MaxHosts,
			}
		}
		p.admit.setOwnerAdmin(rec.Owner, rec.Weight, caps)
	}
	var adopt []*Job
	for _, rec := range rs.SortedJobs() {
		job := &Job{
			ID:          rec.ID,
			Owner:       rec.Owner,
			K:           rec.K,
			Labels:      rec.Labels,
			home:        rec.Home,
			priority:    rec.Priority,
			shareWeight: clampShareWeight(rec.ShareWeight),
			deadline:    rec.Deadline,
			board:       p.env.Board,
			pipe:        p,
			done:        make(chan struct{}),
			cancelCh:    make(chan struct{}),
			submitted:   rec.SubmittedAt,
			enqueued:    rec.SubmittedAt,
			started:     rec.StartedAt,
			finished:    rec.FinishedAt,
		}
		if job.home < 0 || job.home >= len(p.env.Sites) {
			// The testbed may be configured differently than the one the
			// job was submitted to; fall back to the accounts site.
			job.home = 0
		}
		g, gerr := afg.DecodeJSON(rec.Graph)
		if g != nil {
			job.Graph = g
		} else {
			// A handle must always carry a graph (statusSnapshot reads its
			// name); an undecodable one terminalizes below.
			job.Graph = afg.NewGraph(rec.ID)
		}
		terminal := true
		expired := false
		switch {
		case gerr != nil:
			job.state = JobFailed
			job.err = fmt.Errorf("vdce: recovered job graph: %w", gerr)
		case rec.State == services.JobStateDone:
			// The result payload is not persisted — Result() is nil after
			// a restart — but the terminal status survives.
			job.state = JobDone
		case rec.State == services.JobStateCanceled:
			job.state = JobCanceled
			job.err = ErrJobCanceled
		case rec.State == services.JobStateFailed:
			job.state = JobFailed
			if rec.Error != "" {
				job.err = errors.New(rec.Error)
			} else {
				job.err = errors.New("vdce: job failed before restart")
			}
		case !rec.Deadline.IsZero() && !time.Now().Before(rec.Deadline):
			// The job's deadline expired while the control plane was down:
			// re-admitting and dispatching it would burn scheduler and host
			// capacity on work that is already lost. Terminalize it at
			// replay instead — with a stream event, because unlike the
			// terminal restores below this IS a lifecycle transition.
			job.state = JobFailed
			job.err = ErrJobDeadlineExceeded
			job.finished = rec.Deadline
			expired = true
		default:
			// Queued, scheduling, or running at the crash: re-adopt as
			// queued. In-flight jobs lost their partial progress with the
			// old engine; they re-schedule and re-execute from scratch.
			terminal = false
			job.state = JobQueued
			job.recovered = rec.State != services.JobStateQueued
			job.started = time.Time{}
		}
		// Seed the lifecycle trace: every recovered job's chain starts at
		// its original submission; terminal restores get their terminal
		// stamp synthesized so recovered traces satisfy the same
		// complete-chain contract as live ones.
		job.stampLocked(services.PhaseSubmitted, "", rec.SubmittedAt)
		m := p.env.obsM
		if terminal {
			if job.finished.IsZero() {
				job.finished = rec.SubmittedAt
			}
			detail := ""
			if job.err != nil {
				detail = job.err.Error()
			}
			job.finished = job.stampLocked(job.state.String(), detail, job.finished)
			close(job.done)
			if expired {
				p.recovery.DeadlineExpiredAtReplay++
				if m != nil {
					m.recoveryExpired.Inc()
				}
				job.publish()
				p.persistState(job)
			} else {
				p.recovery.TerminalRetained++
				if m != nil {
					m.recoveryTerminal.Inc()
				}
				// Restore the board row without publishing a stream event: a
				// reboot is not a lifecycle transition.
				p.env.Board.Update(job.statusSnapshot())
			}
		} else {
			job.stampLocked("recovered", rec.State, time.Now())
			if job.recovered {
				p.recovery.InFlightRedispatched++
				if m != nil {
					m.recoveryRedispatched.Inc()
				}
			} else {
				p.recovery.QueuedRecovered++
				if m != nil {
					m.recoveryRequeued.Inc()
				}
			}
			adopt = append(adopt, job)
		}
		p.jobs = append(p.jobs, job)
		p.byID[job.ID] = job
	}
	sort.Slice(p.jobs, func(i, j int) bool { return canonicalBefore(p.jobs[i], p.jobs[j]) })
	sort.Slice(adopt, func(i, j int) bool { return canonicalBefore(adopt[i], adopt[j]) })
	p.nextID = rs.MaxJobSeq
	return adopt
}

// persistSubmitted appends a new job's full record to the durable log.
// Store appends are best effort on this path: an I/O error is sticky in
// the log and surfaces on Sync/Close, while the in-memory pipeline
// keeps serving.
func (p *pipeline) persistSubmitted(j *Job) {
	if p.store == nil {
		return
	}
	graph, err := json.Marshal(j.Graph)
	if err != nil {
		return
	}
	_ = p.store.JobSubmitted(store.JobRecord{
		ID:          j.ID,
		Owner:       j.Owner,
		Graph:       graph,
		K:           j.K,
		Home:        j.home,
		Priority:    j.priority,
		ShareWeight: j.shareWeight,
		Labels:      j.Labels,
		Deadline:    j.deadline,
		SubmittedAt: j.submitted,
		State:       services.JobStateQueued,
	})
}

// persistState appends a job's lifecycle transition to the durable log.
// Suppressed while the pipeline is stopping: a graceful shutdown fails
// in-flight jobs with ErrPipelineClosed, but durably they remain
// queued/running — exactly the state the next boot re-adopts them from.
func (p *pipeline) persistState(j *Job) {
	if p.store == nil || p.stopping.Load() {
		return
	}
	j.mu.Lock()
	state := j.state.String()
	errMsg := ""
	if j.err != nil {
		errMsg = j.err.Error()
	}
	started, finished := j.started, j.finished
	j.mu.Unlock()
	_ = p.store.JobState(j.ID, state, errMsg, started, finished)
}

// submitSpec is a fully resolved submission (options applied).
type submitSpec struct {
	owner       string
	graph       *afg.Graph
	k           int
	home        int // < 0 picks sites round-robin
	priority    int
	shareWeight int
	deadline    time.Time
	labels      map[string]string
}

// submit admits a job into the fair-share priority queue, blocking
// while it is full. An owner over its queued-jobs quota is rejected
// with a typed QuotaError before consuming any shared queue capacity.
// With shedding enabled the blocking is bounded: estimate-based checks
// (breaker saturation, deadline infeasibility) reject before touching
// the queue, and a full queue sheds with a typed *ShedError after
// Shed.MaxSubmitWait instead of parking the submitter indefinitely.
func (p *pipeline) submit(ctx context.Context, spec submitSpec) (*Job, error) {
	if err := spec.graph.Validate(); err != nil {
		return nil, err
	}
	if spec.home >= len(p.env.Sites) {
		return nil, fmt.Errorf("vdce: no site %d", spec.home)
	}
	if !spec.deadline.IsZero() && !time.Now().Before(spec.deadline) {
		return nil, ErrJobDeadlineExceeded
	}
	if serr := p.preAdmitShed(spec); serr != nil {
		p.meter.record(true)
		p.countShed(serr.Reason, spec.owner)
		return nil, serr
	}
	// Claim the owner's queued-jobs quota first: the reservation covers
	// the whole queued phase (including the wait for a queue slot below)
	// and is returned when the job pops, is removed, or dies before
	// reaching the queue.
	if err := p.admit.reserveQueued(spec.owner); err != nil {
		if m := p.env.obsM; m != nil {
			m.rejectQuota.Inc()
		}
		p.log().Info("submission rejected", "owner", spec.owner, "reason", "quota")
		return nil, err
	}
	// With shedding on, the queue slot is claimed before the job handle
	// is registered: a shed submission leaves no residue on the board,
	// exactly like a quota rejection. The bounded wait is the shed
	// threshold — a submitter is never blocked beyond it.
	preSlot := false
	if p.shed.enabled() {
		timer := time.NewTimer(p.shed.MaxSubmitWait)
		defer timer.Stop()
		select {
		case p.slots <- struct{}{}:
			preSlot = true
		case <-timer.C:
			p.admit.unreserveQueued(spec.owner)
			p.meter.record(true)
			p.countShed(ShedQueueFull, spec.owner)
			return nil, p.shed.shedError(ShedQueueFull,
				fmt.Sprintf("queue of %d full for %v", p.cfg.QueueDepth, p.shed.MaxSubmitWait))
		case <-ctx.Done():
			p.admit.unreserveQueued(spec.owner)
			return nil, ctx.Err()
		case <-p.ctx.Done():
			p.admit.unreserveQueued(spec.owner)
			return nil, ErrPipelineClosed
		}
	}
	job := &Job{
		Owner:       spec.owner,
		Graph:       spec.graph,
		K:           spec.k,
		Labels:      spec.labels,
		priority:    spec.priority,
		shareWeight: spec.shareWeight,
		deadline:    spec.deadline,
		board:       p.env.Board,
		pipe:        p,
		done:        make(chan struct{}),
		cancelCh:    make(chan struct{}),
		state:       JobQueued,
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if preSlot {
			p.releaseSlot()
		}
		p.admit.unreserveQueued(spec.owner)
		return nil, ErrPipelineClosed
	}
	if spec.home < 0 {
		spec.home = p.nextHome
		p.nextHome = (p.nextHome + 1) % len(p.env.Sites)
	}
	job.home = spec.home
	p.nextID++
	job.ID = fmt.Sprintf("job-%d", p.nextID)
	// Stamp the submission time under p.mu so p.jobs stays sorted in the
	// canonical (submitted, ID) listing order: two concurrent submits
	// cannot observe inverted clocks, and the insert below only has to
	// bubble past timestamp ties (where string ID order, e.g. "job-10" <
	// "job-9", can disagree with assignment order). Cursor pagination
	// binary-searches this order.
	now := time.Now()
	job.submitted, job.enqueued = now, now
	job.mu.Lock()
	job.stampLocked(services.PhaseSubmitted, "", now)
	job.mu.Unlock()
	p.jobs = append(p.jobs, job)
	for i := len(p.jobs) - 1; i > 0 && canonicalBefore(p.jobs[i], p.jobs[i-1]); i-- {
		p.jobs[i], p.jobs[i-1] = p.jobs[i-1], p.jobs[i]
	}
	p.byID[job.ID] = job
	p.mu.Unlock()
	p.persistSubmitted(job)
	p.pruneRetained()
	job.publish()
	p.gauge()
	if !preSlot {
		// Reserve a queue slot (backpressure), then enqueue. The job is
		// visible on the board while its submitter waits, exactly like a
		// sender blocked on a full channel.
		select {
		case p.slots <- struct{}{}:
		case <-ctx.Done():
			job.terminalize(JobFailed, ctx.Err(), nil)
			p.admit.unreserveQueued(spec.owner)
			return nil, ctx.Err()
		case <-p.ctx.Done():
			job.terminalize(JobFailed, ErrPipelineClosed, nil)
			p.admit.unreserveQueued(spec.owner)
			return nil, ErrPipelineClosed
		case <-job.cancelCh:
			// Cancel won while we waited for capacity; the job is terminal.
			p.admit.unreserveQueued(spec.owner)
			return nil, ErrJobCanceled
		}
	}
	// A cancel may have landed in the same instant the slot freed
	// (select picks ready cases at random) or while a pre-claimed slot's
	// job registered: never enqueue a job that is already terminal.
	if job.canceled() {
		p.releaseSlot()
		p.admit.unreserveQueued(spec.owner)
		return nil, ErrJobCanceled
	}
	wait := job.stampAdmitted(time.Now())
	p.admit.push(job)
	p.meter.record(false)
	if m := p.env.obsM; m != nil {
		m.submitWait.Observe(wait.Seconds())
		m.accepted.Inc()
	}
	p.log().Debug("job admitted", "job_id", job.ID, "owner", job.Owner)
	if !job.deadline.IsZero() {
		// Drop the job at its deadline if it is still queued then, so it
		// does not pin a queue slot or block Wait callers until a worker
		// happens to pop it.
		job.mu.Lock()
		job.expiry = time.AfterFunc(time.Until(job.deadline), job.expireQueued)
		job.mu.Unlock()
	}
	p.wake()
	return job, nil
}

// releaseSlot returns one unit of queue capacity after a job leaves the
// admission queue (popped by a worker or removed by Cancel).
func (p *pipeline) releaseSlot() { <-p.slots }

// log returns the environment's structured logger, or a discarding one.
func (p *pipeline) log() *slog.Logger {
	if p.env == nil || p.env.log == nil {
		return discardLog
	}
	return p.env.log
}

// countShed feeds one admission rejection into the per-reason counter
// and the structured log.
func (p *pipeline) countShed(reason, owner string) {
	if m := p.env.obsM; m != nil {
		switch reason {
		case ShedQueueFull:
			m.rejectQueueFull.Inc()
		case ShedDeadlineInfeasible:
			m.rejectDeadline.Inc()
		case ShedBreakerSaturated:
			m.rejectBreaker.Inc()
		}
	}
	p.log().Info("submission shed", "owner", owner, "reason", reason)
}

// services resolves the scheduling services for home site i, caching
// successes. Concurrent rounds from different home sites share nothing
// but the internally locked repositories, so rounds on disjoint sites
// proceed in parallel.
func (p *pipeline) services(home int) (*siteSvc, error) {
	p.svcMu.Lock()
	if s, ok := p.svc[home]; ok {
		p.svcMu.Unlock()
		return s, nil
	}
	p.svcMu.Unlock()
	// Dial outside the lock so one slow site's dial never stalls rounds
	// for sites whose services are already cached. Two workers may race
	// to dial the same site; the loser's clients stay registered with
	// the environment and are released on Close.
	local, remotes, err := p.env.siteServices(home)
	if err != nil {
		return nil, err
	}
	s := &siteSvc{local: local, remotes: remotes}
	p.svcMu.Lock()
	if cached, ok := p.svc[home]; ok {
		s = cached
	} else {
		p.svc[home] = s
	}
	p.svcMu.Unlock()
	return s, nil
}

// worker drains batches of fairly-arbitrated jobs from the admission
// queue and runs their scheduling rounds from each job's home site. One
// wakeup token buys up to DispatchBatch pops under a single queue lock
// acquisition (the batched handoff); a full batch means more work
// likely remains, so the worker re-arms another idle worker before it
// starts processing, keeping deep backlogs spread across the pool.
// Each job's queue-capacity slot frees when its round starts, exactly
// as per-job handoff did — jobs still waiting in a worker's batch keep
// counting against QueueDepth, so batching never weakens Submit
// backpressure or the shed threshold.
func (p *pipeline) worker() {
	defer p.workerWG.Done()
	batch := make([]*Job, 0, p.cfg.DispatchBatch)
	for {
		select {
		case <-p.ctx.Done():
			return
		default:
		}
		// Bound the batch by free run capacity: popping a job commits
		// its place in the dispatch order, so draining more jobs than
		// the engine can start binds WFQ arbitration early — jobs
		// submitted while the excess waits in this worker's buffer
		// would be unfairly ordered behind it. With the engine choked
		// this degrades to per-job handoff (late binding, exact
		// fairness); with slots free the full batch amortizes the
		// queue lock. The read is advisory — a slot freed or taken
		// concurrently only shifts where the next batch cuts off.
		max := p.cfg.DispatchBatch
		if avail := cap(p.runSem) - len(p.runSem); avail < max {
			max = avail
			if max < 1 {
				max = 1
			}
		}
		batch = p.admit.popBatch(batch[:0], max)
		if len(batch) == 0 {
			select {
			case <-p.ctx.Done():
				return
			case <-p.notify:
			}
			continue
		}
		if m := p.env.obsM; m != nil {
			m.batchPops.Observe(float64(len(batch)))
		}
		if len(batch) == max {
			p.wake()
		}
		for i, job := range batch {
			batch[i] = nil // release the reference before the round runs
			p.releaseSlot()
			p.process(job)
		}
	}
}

// process runs one job's scheduling round and dispatches its execution.
// The scheduling phase completes on the worker; execution is handed to
// a goroutine gated by the run semaphore so the worker can keep
// scheduling while earlier jobs still execute.
func (p *pipeline) process(job *Job) {
	// Canceled and deadline-expired queued jobs are dropped here, before
	// any scheduling work happens.
	if !job.claimForScheduling() {
		// The job may have been terminal before the pop even charged it
		// (a cancel that landed between submit's check and push): its
		// terminalize ran too early to see the charge, so return it
		// explicitly — jobReleased is idempotent.
		p.jobReleased(job)
		p.gauge()
		return
	}
	p.gauge()
	svc, err := p.services(job.home)
	if err != nil {
		job.fail(fmt.Errorf("vdce: scheduling services for site %d: %w", job.home, err))
		p.gauge()
		return
	}
	sched := core.NewScheduler(svc.local, svc.remotes, p.env.Net, job.K)
	cost, err := p.env.CostFunc(job.Graph)
	if err != nil {
		job.fail(err)
		p.gauge()
		return
	}
	roundStart := time.Now()
	table, err := sched.Schedule(job.Graph, cost)
	if m := p.env.obsM; m != nil {
		m.roundLatency.Observe(time.Since(roundStart).Seconds())
	}
	if err != nil {
		job.fail(err)
		p.gauge()
		return
	}
	job.setTable(table)
	job.stampScheduled()

	// Held-hosts quota: charge the placement's distinct hosts against
	// the owner. An owner at its cap does not hold the worker hostage —
	// the job parks in its own goroutine (other owners keep dispatching
	// through this worker) until enough of the owner's hosts free.
	needed := distinctHosts(table)
	if !p.admit.tryChargeHosts(job, needed) {
		// Gate the owner before parking: pop skips owners with a parked
		// job, so park goroutines per owner are bounded by the worker
		// count (concurrent workers may each park one job they popped
		// before the gate landed) and the rest of the owner's backlog
		// waits in the queue — scheduled against fresh resource state
		// when its turn comes.
		p.admit.setParked(job, true)
		job.stampEvent("host-park", "")
		if m := p.env.obsM; m != nil {
			m.hostParks.Inc()
		}
		p.log().Debug("job parked on held-hosts quota", "job_id", job.ID, "owner", job.Owner)
		go p.parkForHosts(job, table, needed)
		return
	}
	job.noteHostsHeld(len(needed))
	p.dispatch(job, table)
}

// dispatch hands a scheduled job to its execution goroutine once a run
// slot frees. Called on a scheduler worker in the common case — that
// is deliberate backpressure: with the engine saturated, workers park
// here, the admission queue fills, and Submit blocks — so the total
// number of admitted-but-unfinished jobs stays bounded by QueueDepth +
// SchedulerWorkers·DispatchBatch + MaxConcurrentRuns, plus hosts-parked
// jobs (the pop-side parked gate bounds those per owner by the worker
// count times the dispatch batch).
// A job waiting for a slot
// remains in the scheduling state (it is still in a worker's hands).
// Jobs resuming from a hosts-quota park call this off-worker instead.
func (p *pipeline) dispatch(job *Job, table *core.AllocationTable) {
	select {
	case p.runSem <- struct{}{}:
	case <-job.cancelCh:
		job.terminalize(JobCanceled, ErrJobCanceled, nil)
		p.gauge()
		return
	case <-p.ctx.Done():
		job.fail(ErrPipelineClosed)
		p.gauge()
		return
	}
	go p.execute(job, table)
}

// parkForHosts waits until the job's owner frees enough held hosts for
// this placement, then dispatches it. The park lives off-worker so a
// capped owner's excess never blocks other owners' dispatch (and is
// bounded per owner by the pop-side parked gate); it ends early
// on cancellation, deadline expiry (WithDeadline bounds the whole
// lifetime, parked time included), or pipeline shutdown. Terminal
// exits leave the parked gate to release(); the success path clears it
// and wakes a worker, since the owner just became poppable again.
func (p *pipeline) parkForHosts(job *Job, table *core.AllocationTable, needed []string) {
	var deadlineCh <-chan time.Time
	if dl, ok := job.Deadline(); ok {
		timer := time.NewTimer(time.Until(dl))
		defer timer.Stop()
		deadlineCh = timer.C
	}
	for {
		// Fetch the owner's broadcast channel before re-checking, so a
		// release landing between the check and the wait still wakes us.
		// The channel is per owner: other owners' terminal jobs cannot
		// wake this park.
		changed := p.admit.usageChanged(job.Owner)
		if p.admit.tryChargeHosts(job, needed) {
			p.admit.setParked(job, false)
			p.wake()
			job.stampEvent("host-unpark", "")
			job.noteHostsHeld(len(needed))
			p.dispatch(job, table)
			return
		}
		select {
		case <-changed:
		case <-deadlineCh:
			job.terminalize(JobFailed, ErrJobDeadlineExceeded, nil)
			p.gauge()
			return
		case <-job.cancelCh:
			job.terminalize(JobCanceled, ErrJobCanceled, nil)
			p.gauge()
			return
		case <-p.ctx.Done():
			job.fail(ErrPipelineClosed)
			p.gauge()
			return
		}
	}
}

// distinctHosts lists the distinct hosts a placement table uses — the
// unit the held-hosts quota charges.
func distinctHosts(table *core.AllocationTable) []string {
	seen := make(map[string]struct{})
	var hosts []string
	for _, e := range table.Entries {
		for _, h := range e.Hosts {
			if _, ok := seen[h]; !ok {
				seen[h] = struct{}{}
				hosts = append(hosts, h)
			}
		}
	}
	return hosts
}

// noteHostsHeld mirrors a successful host charge into the job's status
// view and publishes it, so /v1/jobs and owner counters show the held
// hosts live. The mirror only rises — concurrent reschedule events may
// report their ledger counts out of order, and the count never shrinks
// until terminalize zeroes it.
func (j *Job) noteHostsHeld(n int) {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		// Lost a race with terminalize: the charge was already released.
		j.mu.Unlock()
		return
	}
	if n <= j.hostsHeld {
		j.mu.Unlock()
		return
	}
	j.hostsHeld = n
	j.mu.Unlock()
	j.publish()
}

// wake hands one wakeup token to an idle scheduler worker.
func (p *pipeline) wake() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// jobReleased returns a terminal job's quota charges and, when
// anything freed, wakes an idle worker — a parked owner may have just
// dropped below its in-flight cap.
func (p *pipeline) jobReleased(j *Job) {
	if p.admit.release(j) {
		p.wake()
	}
}

// execute runs the job's task graph under its own cancelable (and
// deadline-bounded, when WithDeadline was given) context, then
// terminalizes it.
func (p *pipeline) execute(job *Job, table *core.AllocationTable) {
	defer func() { <-p.runSem }()
	job.stampDispatched()
	runCtx := p.ctx
	var cancels []context.CancelFunc
	if !job.deadline.IsZero() {
		ctx, cancel := context.WithDeadline(runCtx, job.deadline)
		runCtx, cancels = ctx, append(cancels, cancel)
	}
	runCtx, cancel := context.WithCancel(runCtx)
	cancels = append(cancels, cancel)
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	if !job.setRunCancel(cancel) {
		job.terminalize(JobCanceled, ErrJobCanceled, nil)
		p.gauge()
		return
	}
	job.transition(JobRunning)
	p.gauge()
	res, err := p.env.Engine.Execute(runCtx, job.Graph, table, exec.WithEventSink(job.execEvent))
	switch {
	case err == nil:
		// The run may have rescheduled tasks mid-flight: adopt the
		// patched table so Table() reports where tasks actually ran.
		if res.Table != nil {
			job.setTable(res.Table)
		}
		job.complete(res)
	case job.canceled():
		job.terminalize(JobCanceled, ErrJobCanceled, nil)
	case errors.Is(runCtx.Err(), context.DeadlineExceeded):
		job.terminalize(JobFailed, fmt.Errorf("%w: %v", ErrJobDeadlineExceeded, err), nil)
	default:
		job.fail(err)
	}
	p.gauge()
}

// canceled reports whether Cancel has been requested.
func (j *Job) canceled() bool {
	select {
	case <-j.cancelCh:
		return true
	default:
		return false
	}
}

// gauge mirrors the in-flight job count into the visualization service,
// the same channel the workload series use.
func (p *pipeline) gauge() {
	if p.env.Metrics != nil && p.env.Board != nil {
		p.env.Metrics.Add("jobs:in-flight", time.Since(p.start), float64(p.env.Board.InFlight()))
	}
}

// stop fails every queued job and waits for in-flight work to settle.
// The environment context must already be canceled.
func (p *pipeline) stop() {
	// Durability first: from here on, shutdown-induced terminal states
	// (ErrPipelineClosed) are not persisted — queued and running jobs
	// remain recoverable in the log, which is what the next boot
	// re-adopts.
	p.stopping.Store(true)
	// Refuse new admissions first: any job registered before this point
	// is visible to allSettled below, so the drain loop will fail it.
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.workerWG.Wait()
	// Workers are gone; anything left in the queue will never be
	// scheduled. A submitter racing with shutdown may still enqueue after
	// a drain pass, so keep draining until every admitted job has reached
	// a terminal state.
	for {
		for job := p.admit.pop(); job != nil; job = p.admit.pop() {
			p.releaseSlot()
			job.terminalize(JobFailed, ErrPipelineClosed, nil)
			// Already-terminal jobs (canceled pre-push) missed the pop
			// charge in their own terminalize; idempotent re-release.
			p.jobReleased(job)
		}
		if p.allSettled() {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// pruneRetained evicts the oldest terminal jobs beyond the retention
// cap, from both the pipeline's registry and the job board, so a
// long-running server does not accumulate finished jobs forever.
// In-flight jobs are never evicted.
func (p *pipeline) pruneRetained() {
	var evicted []string
	p.mu.Lock()
	over := len(p.jobs) - p.cfg.MaxRetainedJobs
	if over > 0 {
		kept := make([]*Job, 0, len(p.jobs))
		for _, j := range p.jobs {
			if over > 0 {
				select {
				case <-j.done:
					evicted = append(evicted, j.ID)
					delete(p.byID, j.ID)
					over--
					continue
				default:
				}
			}
			kept = append(kept, j)
		}
		p.jobs = kept
	}
	p.mu.Unlock()
	for _, id := range evicted {
		p.env.Board.Delete(id)
		if p.store != nil {
			// Deletion records keep the durable log's mirror bounded by the
			// same retention policy as the in-memory board.
			_ = p.store.JobDeleted(id)
		}
	}
}

// allSettled reports whether every admitted job is terminal.
func (p *pipeline) allSettled() bool {
	p.mu.Lock()
	jobs := append([]*Job(nil), p.jobs...)
	p.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.done:
		default:
			return false
		}
	}
	return true
}

// job returns a retained job handle by ID.
func (p *pipeline) job(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.byID[id]
	return j, ok
}

// snapshot returns every retained job handle in submission order.
func (p *pipeline) snapshot() []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Job(nil), p.jobs...)
}

// canonicalBefore orders job handles exactly like services.SortJobs
// orders their statuses: (submission time, then ID string). submit()
// maintains p.jobs in this order so cursor pagination can binary-search
// it; both fields are immutable after registration, so no job lock is
// needed.
func canonicalBefore(a, b *Job) bool {
	if !a.submitted.Equal(b.submitted) {
		return a.submitted.Before(b.submitted)
	}
	return a.ID < b.ID
}

// pageAfter returns up to limit job statuses matching the owner/state
// filters whose cursor strictly follows after, in canonical order, plus
// whether more matching rows may follow. Cost is O(log n) to locate the
// resume point plus O(rows scanned for this page) — independent of how
// deep into the board the page sits, unlike offset pagination which
// materializes every preceding row.
func (p *pipeline) pageAfter(owner, state string, after jobsapi.Cursor, limit int) ([]services.JobStatus, bool) {
	if limit <= 0 {
		return nil, false
	}
	var positions map[string]int
	out := make([]services.JobStatus, 0, limit)
	const chunk = 256
	buf := make([]*Job, 0, chunk)
	for {
		buf = buf[:0]
		p.mu.Lock()
		// Resume strictly after the cursor. p.jobs is canonically ordered
		// (see submit), so the first candidate is found by binary search —
		// cursors name a (time, ID) position, not an index, which is why
		// rows evicted by retention are simply skipped, never double-served.
		i := sort.Search(len(p.jobs), func(i int) bool {
			j := p.jobs[i]
			return after.Less(jobsapi.Cursor{Submitted: j.submitted.UnixNano(), ID: j.ID})
		})
		for ; i < len(p.jobs) && len(buf) < chunk; i++ {
			buf = append(buf, p.jobs[i])
		}
		done := i >= len(p.jobs)
		p.mu.Unlock()
		// Snapshot and filter outside the lock: statuses take each job's
		// own mutex, and a page of snapshots under p.mu would stall submits.
		for _, j := range buf {
			s := j.statusSnapshot()
			after = jobsapi.Cursor{Submitted: s.SubmittedAt.UnixNano(), ID: s.ID}
			if !s.Matches(owner, state) {
				continue
			}
			if s.State == services.JobStateQueued {
				if positions == nil {
					// One fair-queuing replay covers every queued row on the
					// page, same as ListJobs.
					positions = p.admit.positions()
				}
				s.QueuePosition = positions[s.ID]
			}
			if len(out) == limit {
				// A row beyond the page proves there is more; it is re-served
				// as the first row of the next page.
				return out, true
			}
			out = append(out, s)
		}
		if done {
			return out, false
		}
	}
}

// Submit admits an application into the environment's concurrent
// submission pipeline and returns its Job handle immediately. Functional
// options carry the submission's owner, priority, deadline, home site,
// neighbor-site count, and labels; the zero configuration is an
// anonymous, priority-0, home-site-only submission with round-robin home
// sites. Jobs dequeue by effective priority — the base priority aged
// upward while the job waits, so no submission starves — and are
// executed on the shared testbed; use Job.Wait or Job.Done to observe
// completion and Job.Cancel to abort. Submit blocks only while the
// bounded admission queue is full (backpressure), honoring ctx.
func (env *Environment) Submit(ctx context.Context, g *afg.Graph, opts ...SubmitOption) (*Job, error) {
	o := submitOptions{home: -1}
	for _, opt := range opts {
		opt(&o)
	}
	spec := submitSpec{
		owner:       o.owner,
		graph:       g,
		k:           o.maxHosts,
		home:        o.home,
		shareWeight: 1,
		deadline:    o.deadline,
		labels:      o.labels,
	}
	if o.owner != "" {
		if spec.home < 0 {
			spec.home = 0 // the accounts site, as in the one-shot owned path
		}
		spec.k = env.ClampK(o.owner, spec.k)
	}
	var acctPriority *int
	if o.owner != "" {
		if acct, err := env.Sites[0].Repo.Users.Lookup(o.owner); err == nil {
			acctPriority = &acct.Priority
		}
	}
	switch {
	case o.priority != nil:
		spec.priority = *o.priority
	case acctPriority != nil:
		spec.priority = *acctPriority
	}
	// Fair-share weight: WithShareWeight wins, else the owner's
	// user-account priority (the paper's per-user resource entitlement),
	// else 1; always saturated into [1, MaxShareWeight] so every owner
	// progresses and no caller can buy an unbounded share.
	switch {
	case o.shareWeight != nil:
		spec.shareWeight = *o.shareWeight
	case acctPriority != nil:
		spec.shareWeight = *acctPriority
	}
	spec.shareWeight = clampShareWeight(spec.shareWeight)
	return env.pipe.submit(ctx, spec)
}

// SubmitOwned is a thin wrapper over Submit for a named user at the
// submitting site.
//
// Deprecated: use Submit with WithOwner and WithMaxHosts, which also
// expose priority, deadline, and cancellation:
//
//	env.Submit(ctx, g, WithOwner(owner), WithMaxHosts(k))
func (env *Environment) SubmitOwned(ctx context.Context, owner string, g *afg.Graph, k int) (*Job, error) {
	return env.Submit(ctx, g, WithOwner(owner), WithMaxHosts(k))
}

// Jobs returns the status of every submitted job in stable order
// (submission time, then ID).
func (env *Environment) Jobs() []services.JobStatus {
	return env.Board.List()
}

// ListJobs returns live job statuses filtered by owner and state (empty
// strings match everything), in stable (submission time, then ID) order.
// Unlike the board's snapshots, queued jobs carry their current
// admission-queue position — computed for the whole backlog in one
// fair-queuing replay, not one per job.
func (env *Environment) ListJobs(owner, state string) []services.JobStatus {
	jobs := env.pipe.snapshot()
	var positions map[string]int
	if state == "" || state == services.JobStateQueued {
		// Only filters that can list queued jobs pay for the replay.
		positions = env.pipe.admit.positions()
	}
	out := make([]services.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		s := j.statusSnapshot()
		if s.State == services.JobStateQueued {
			s.QueuePosition = positions[s.ID]
		}
		if s.Matches(owner, state) {
			out = append(out, s)
		}
	}
	services.SortJobs(out)
	return out
}

// CountJobs returns how many retained jobs match the owner/state
// filters — the jobsapi.CountSource backend of the count-only listing
// (limit=0). It reads the job board's incremental per-state and
// per-owner tallies, so a count over a million-job board costs
// O(shards), never a status materialization per row. The board lags a
// publish or a retention eviction by at most the instant between the
// pipeline mutation and the matching board write, which a count-only
// monitoring probe tolerates.
func (env *Environment) CountJobs(owner, state string) int {
	return env.Board.CountFiltered(owner, state)
}

// ListJobsAfter returns up to limit live job statuses matching the
// owner/state filters that sort strictly after the cursor in canonical
// (submission time, then ID) order, plus whether more matches may
// follow. It is the keyset-pagination backend of GET /v1/jobs: cost is
// proportional to the page, not to how deep the page sits, so the last
// page of a 100k-job board costs the same as the first.
func (env *Environment) ListJobsAfter(owner, state string, after jobsapi.Cursor, limit int) ([]services.JobStatus, bool) {
	return env.pipe.pageAfter(owner, state, after, limit)
}

// Owners reports every known owner's fair-share weight, configured
// quota limits, and live usage counters. Usage is derived from the job
// board — the same ground truth /v1/jobs serves — so the two surfaces
// cannot disagree; weights come from the admission queue's fair-share
// state and limits from the pipeline configuration. Owners are sorted
// by name.
func (env *Environment) Owners() []services.OwnerStatus {
	usages := env.Board.OwnerUsages()
	weights := env.pipe.admit.ownerWeights()
	boardWeights := env.Board.OwnerWeights()
	names := make([]string, 0, len(usages)+len(weights))
	for o := range usages {
		names = append(names, o)
	}
	for o := range weights {
		if _, ok := usages[o]; !ok {
			names = append(names, o)
		}
	}
	sort.Strings(names)
	out := make([]services.OwnerStatus, 0, len(names))
	for _, o := range names {
		out = append(out, env.ownerStatus(o, usages[o], boardWeights[o]))
	}
	return out
}

// ownerStatus builds one owner's /v1/owners row from the admission
// queue's effective admin state (per-owner overrides included). The
// queue prunes fully drained owners, so for an owner it no longer
// tracks the weight falls back to lastWeight — the latest-submitted
// weight the job board remembers from the owner's retained rows.
func (env *Environment) ownerStatus(owner string, usage services.OwnerUsage, lastWeight int) services.OwnerStatus {
	weight, pinned, caps, _, known := env.pipe.admit.ownerAdmin(owner)
	if !known && lastWeight >= 1 {
		weight = lastWeight
	}
	return services.OwnerStatus{
		Owner:        owner,
		Weight:       clampShareWeight(weight),
		WeightPinned: pinned,
		MaxQueued:    caps.MaxQueuedPerOwner,
		MaxInFlight:  caps.MaxInFlightPerOwner,
		MaxHosts:     caps.MaxHostsPerOwner,
		Usage:        usage,
	}
}

// UpdateOwner applies a runtime owner-admin change: a provided weight
// pins the owner's fair-share weight (submissions no longer move it),
// and any provided quota field installs a per-owner cap override
// merged over the owner's current effective caps (0 = that cap
// unlimited). The change takes effect on the live admission queue
// immediately — parked dispatches re-check against the new caps — and
// is persisted to the durable store when one is configured, so it
// survives restarts. Returns the owner's refreshed status.
func (env *Environment) UpdateOwner(owner string, upd services.OwnerUpdate) (services.OwnerStatus, error) {
	if upd.Empty() {
		return services.OwnerStatus{}, errors.New("vdce: empty owner update")
	}
	_, _, cur, hadOverride, _ := env.pipe.admit.ownerAdmin(owner)
	weight := 0
	if upd.Weight != nil {
		weight = clampShareWeight(*upd.Weight)
	}
	var caps *QuotaConfig
	if hadOverride || upd.MaxQueued != nil || upd.MaxInFlight != nil || upd.MaxHosts != nil {
		merged := cur
		if upd.MaxQueued != nil {
			merged.MaxQueuedPerOwner = *upd.MaxQueued
		}
		if upd.MaxInFlight != nil {
			merged.MaxInFlightPerOwner = *upd.MaxInFlight
		}
		if upd.MaxHosts != nil {
			merged.MaxHostsPerOwner = *upd.MaxHosts
		}
		caps = &merged
	}
	env.pipe.admit.setOwnerAdmin(owner, weight, caps)
	// A raised cap may make a parked owner poppable again.
	env.pipe.wake()
	if env.pipe.store != nil {
		w, pinned, eff, override, _ := env.pipe.admit.ownerAdmin(owner)
		rec := store.OwnerRecord{Owner: owner, HasCaps: override}
		if pinned {
			rec.Weight = w
		}
		if override {
			rec.MaxQueued = eff.MaxQueuedPerOwner
			rec.MaxInFlight = eff.MaxInFlightPerOwner
			rec.MaxHosts = eff.MaxHostsPerOwner
		}
		_ = env.pipe.store.OwnerUpdated(rec)
	}
	return env.ownerStatus(owner, env.Board.OwnerUsages()[owner], 0), nil
}

// Job returns the live status of one submitted job.
func (env *Environment) Job(id string) (services.JobStatus, bool) {
	if j, ok := env.pipe.job(id); ok {
		return j.Status(), true
	}
	// Evicted jobs may linger on the board a moment longer.
	return env.Board.Get(id)
}

// ErrUnknownJob is returned by CancelJob for IDs the pipeline does not
// retain.
var ErrUnknownJob = errors.New("vdce: unknown job")

// CancelJob cancels the identified job: queued jobs are dropped from the
// admission queue, running jobs are aborted through the execution
// engine's cancellation path. Canceling a terminal job is a no-op.
func (env *Environment) CancelJob(id string) error {
	j, ok := env.pipe.job(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.Cancel()
	return nil
}

// Drain blocks until every job admitted so far has reached a terminal
// state, or ctx ends. Jobs submitted after Drain starts are not waited
// for.
func (env *Environment) Drain(ctx context.Context) error {
	for _, j := range env.pipe.snapshot() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-j.done:
		}
	}
	return nil
}
