package vdce

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/repository"
	"vdce/internal/services"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// soakGraph builds the i-th application of a mixed workload: alternating
// Linear Equation Solver and C3I pipeline instances of varying sizes.
func soakGraph(t testing.TB, i int) *afg.Graph {
	t.Helper()
	var g *afg.Graph
	var err error
	if i%2 == 0 {
		g, err = tasklib.BuildLinearEquationSolver(16+8*(i%3), int64(i+1))
	} else {
		g, err = tasklib.BuildC3IPipeline(6+2*(i%3), int64(i+1))
	}
	if err != nil {
		t.Fatal(err)
	}
	clearMachineTypes(g)
	g.Name = fmt.Sprintf("%s#%d", g.Name, i)
	return g
}

// clearMachineTypes drops the builders' machine-type preferences: the
// fabricated testbed mixes machine types arbitrarily, so every host
// should be eligible.
func clearMachineTypes(g *afg.Graph) {
	for _, task := range g.Tasks {
		task.Props.MachineType = ""
	}
}

// TestConcurrentSubmissionSoak drives 32 concurrent applications through
// Environment.Submit on a multi-site testbed and checks that every job
// completes, the lifecycle board agrees, and the engine really had more
// than one application in flight.
func TestConcurrentSubmissionSoak(t *testing.T) {
	const jobs = 32
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 4, HostsPerGroup: 3, Seed: 31, BaseLoadMax: 0.2},
	})
	ctx := context.Background()

	handles := make([]*Job, jobs)
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		g := soakGraph(t, i)
		job, err := env.Submit(ctx, g, WithMaxHosts(2))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = job
		go func() { errs <- job.Wait(ctx) }()
	}

	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env.Drain(waitCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < jobs; i++ {
		if err := <-errs; err != nil {
			t.Errorf("job failed: %v", err)
		}
	}

	seen := make(map[string]bool, jobs)
	for i, job := range handles {
		if got := job.State(); got != JobDone {
			t.Fatalf("job %d state = %v, err = %v", i, got, job.Err())
		}
		if seen[job.ID] {
			t.Fatalf("duplicate job ID %s", job.ID)
		}
		seen[job.ID] = true
		table, res := job.Table(), job.Result()
		if table == nil || res == nil {
			t.Fatalf("job %d missing artifacts", i)
		}
		if err := table.Validate(job.Graph); err != nil {
			t.Errorf("job %d table: %v", i, err)
		}
		if len(res.Runs) < len(job.Graph.Tasks) {
			t.Errorf("job %d recorded %d runs for %d tasks", i, len(res.Runs), len(job.Graph.Tasks))
		}
		st := job.Status()
		if st.StartedAt.Before(st.SubmittedAt) || st.FinishedAt.Before(st.StartedAt) {
			t.Errorf("job %d timestamps out of order: %+v", i, st)
		}
	}

	counts := env.Board.Counts()
	if counts[services.JobStateDone] != jobs {
		t.Fatalf("board counts = %v, want %d done", counts, jobs)
	}
	if inFlight := env.Board.InFlight(); inFlight != 0 {
		t.Fatalf("board still reports %d jobs in flight", inFlight)
	}
	if got := len(env.Jobs()); got != jobs {
		t.Fatalf("Jobs() = %d entries, want %d", got, jobs)
	}
	if peak := env.Engine.PeakConcurrency(); peak < 2 {
		t.Errorf("engine peak concurrency = %d, want > 1", peak)
	}
	if len(env.Metrics.Series("jobs:in-flight")) == 0 {
		t.Error("pipeline published no in-flight gauge samples")
	}
}

// TestConcurrentSubmissionOverRPC runs a smaller concurrent batch with
// Site Manager RPC servers between the scheduler workers and the sites.
func TestConcurrentSubmissionOverRPC(t *testing.T) {
	const jobs = 8
	env := newEnv(t, Config{
		Testbed:  testbed.Config{Sites: 3, HostsPerGroup: 2, Seed: 32, BaseLoadMax: 0.2},
		UseRPC:   true,
		Pipeline: PipelineConfig{SchedulerWorkers: 3},
	})
	ctx := context.Background()
	for i := 0; i < jobs; i++ {
		if _, err := env.Submit(ctx, soakGraph(t, i), WithMaxHosts(2)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if err := env.Drain(waitCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, st := range env.Jobs() {
		if st.State != services.JobStateDone {
			t.Fatalf("job %s ended %s (%s)", st.ID, st.State, st.Error)
		}
	}
}

// TestOwnedSubmitRespectsAccessDomain checks that a local-domain user's
// pipelined submission never leaves the home sites.
func TestOwnedSubmitRespectsAccessDomain(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 3, HostsPerGroup: 2, Seed: 33},
	})
	users := env.Sites[0].Repo.Users
	if _, err := users.AddUser("loc", "p", 0, repository.DomainLocal); err != nil {
		t.Fatal(err)
	}
	g := soakGraph(t, 1)
	job, err := env.Submit(context.Background(), g, WithOwner("loc"), WithMaxHosts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A local-domain user's tasks must all stay on the submitting site,
	// exactly as in the one-shot path.
	home := env.Sites[0].SiteName()
	for _, e := range job.Table().Entries {
		if e.Site != home {
			t.Fatalf("local-domain task placed on %s, want %s", e.Site, home)
		}
	}
}

// TestPipelineRetentionBound verifies that terminal jobs are evicted
// once the retention cap is exceeded, so long-running servers do not
// accumulate finished jobs forever.
func TestPipelineRetentionBound(t *testing.T) {
	env := newEnv(t, Config{
		Testbed:  testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 37},
		Pipeline: PipelineConfig{MaxRetainedJobs: 4},
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		job, err := env.Submit(ctx, soakGraph(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Eviction happens at admission time, so at most cap+1 jobs remain.
	if got := len(env.Jobs()); got > 5 {
		t.Fatalf("board retains %d jobs, cap is 4", got)
	}
	// The newest job must still be present.
	if _, ok := env.Board.Get("job-10"); !ok {
		t.Fatal("newest job evicted")
	}
	if _, ok := env.Board.Get("job-1"); ok {
		t.Fatal("oldest terminal job not evicted")
	}
}

// TestSubmitRejectsInvalidGraph verifies admission-time validation.
func TestSubmitRejectsInvalidGraph(t *testing.T) {
	env := newEnv(t, Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 34}})
	if _, err := env.Submit(context.Background(), afg.NewGraph("empty")); err == nil {
		t.Fatal("empty graph admitted")
	}
	if got := len(env.Jobs()); got != 0 {
		t.Fatalf("invalid submission reached the board: %d entries", got)
	}
}

// TestSubmitAfterCloseFails verifies shutdown semantics: submissions
// after Close are rejected and queued jobs fail with ErrPipelineClosed.
func TestSubmitAfterCloseFails(t *testing.T) {
	env, err := New(Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 35}})
	if err != nil {
		t.Fatal(err)
	}
	env.Close()
	if _, err := env.Submit(context.Background(), soakGraph(t, 0)); err != ErrPipelineClosed {
		t.Fatalf("Submit after Close = %v, want ErrPipelineClosed", err)
	}
}

// TestSubmitHonorsCallerContext verifies that a canceled admission
// context aborts Submit even when the queue is saturated.
func TestSubmitHonorsCallerContext(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 36},
		// One worker, minimal queue, single-run dispatch: easy to fill.
		Pipeline: PipelineConfig{QueueDepth: 1, SchedulerWorkers: 1, MaxConcurrentRuns: 1},
	})
	// Suspend the console so running jobs park and the queue backs up.
	env.Console.Suspend()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		canceled, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		defer cancel()
		if _, err := env.Submit(canceled, soakGraph(t, i)); err != nil {
			// The queue filled and the context expired: the expected path.
			if canceled.Err() == nil {
				t.Fatalf("submit %d failed before ctx expiry: %v", i, err)
			}
			env.Console.Resume()
			return
		}
	}
	env.Console.Resume()
	t.Fatal("queue never backpressured with a suspended console")
}

// TestJobStateStrings pins the services-layer names the board publishes.
func TestJobStateStrings(t *testing.T) {
	cases := map[JobState]string{
		JobQueued:     services.JobStateQueued,
		JobScheduling: services.JobStateScheduling,
		JobRunning:    services.JobStateRunning,
		JobDone:       services.JobStateDone,
		JobFailed:     services.JobStateFailed,
		JobCanceled:   services.JobStateCanceled,
	}
	for state, want := range cases {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
