package vdce

import (
	"context"
	"errors"
	"testing"
	"time"

	"vdce/internal/services"
	"vdce/internal/testbed"
)

// saturatedEnv builds an environment whose pipeline is easy to choke:
// one scheduler worker, one run slot, a deep admission queue, and the
// console suspended so the first dispatched job parks and everything
// behind it stays queued. The caller resumes the console to release the
// backlog.
func saturatedEnv(t *testing.T, seed int64, aging time.Duration) *Environment {
	t.Helper()
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: seed},
		Pipeline: PipelineConfig{
			QueueDepth:        64,
			SchedulerWorkers:  1,
			MaxConcurrentRuns: 1,
			AgingStep:         aging,
		},
	})
	env.Console.Suspend()
	return env
}

// TestPriorityOvertakesSaturatedQueue is the admission-ordering soak: a
// saturated queue of low-priority jobs is overtaken by one high-priority
// submission, which must finish before every job that was still queued
// when it arrived.
func TestPriorityOvertakesSaturatedQueue(t *testing.T) {
	const lows = 8
	env := saturatedEnv(t, 71, 0)
	ctx := context.Background()

	lowJobs := make([]*Job, 0, lows)
	for i := 0; i < lows; i++ {
		job, err := env.Submit(ctx, soakGraph(t, 1), WithPriority(1))
		if err != nil {
			t.Fatalf("low submit %d: %v", i, err)
		}
		lowJobs = append(lowJobs, job)
	}
	high, err := env.Submit(ctx, soakGraph(t, 3), WithPriority(100))
	if err != nil {
		t.Fatalf("high submit: %v", err)
	}
	// The high-priority job must be next in line (position 1) — or 0 if
	// the worker already claimed it, which is overtaking too.
	if pos := high.Status().QueuePosition; pos > 1 {
		t.Fatalf("high-priority job queue position = %d, want <= 1", pos)
	}

	env.Console.Resume()
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env.Drain(waitCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := high.Err(); err != nil {
		t.Fatalf("high-priority job failed: %v", err)
	}
	// The worker had at most 2 jobs in hand (one scheduling, one parked
	// in the run slot) when the high-priority job arrived; every other
	// low-priority job was still in the admission queue and must have
	// started after the high-priority one.
	started := high.Status().StartedAt
	overtaken := 0
	for i, low := range lowJobs {
		if low.Err() != nil {
			t.Fatalf("low job %d failed: %v", i, low.Err())
		}
		if low.Status().StartedAt.After(started) {
			overtaken++
		}
	}
	if overtaken < lows-2 {
		t.Fatalf("high-priority job overtook only %d of %d queued low-priority jobs", overtaken, lows)
	}
}

// TestAgingPreventsStarvation proves starvation protection: with a small
// AgingStep, a low-priority job that has waited long enough outranks a
// much higher-priority job enqueued later, because effective priority
// rises by one level per AgingStep of waiting.
func TestAgingPreventsStarvation(t *testing.T) {
	const step = 5 * time.Millisecond
	env := saturatedEnv(t, 72, step)
	ctx := context.Background()

	// Two sacrificial jobs occupy the worker (one scheduling, one parked
	// in the run slot) so the jobs under test stay in the queue.
	for i := 0; i < 2; i++ {
		if _, err := env.Submit(ctx, soakGraph(t, 1), WithPriority(1000)); err != nil {
			t.Fatal(err)
		}
	}
	// Give the worker a moment to drain both into scheduling/run-wait.
	time.Sleep(50 * time.Millisecond)

	starved, err := env.Submit(ctx, soakGraph(t, 1), WithPriority(0))
	if err != nil {
		t.Fatal(err)
	}
	// Wait many aging steps before submitting the high-priority rival:
	// priority 10 is outweighed by > 10 steps of waiting.
	time.Sleep(20 * step)
	rival, err := env.Submit(ctx, soakGraph(t, 3), WithPriority(10))
	if err != nil {
		t.Fatal(err)
	}

	if pos := starved.Status().QueuePosition; pos != 1 {
		t.Fatalf("aged low-priority job queue position = %d, want 1 (rival at %d)",
			pos, rival.Status().QueuePosition)
	}
	env.Console.Resume()
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env.Drain(waitCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if starved.Status().StartedAt.After(rival.Status().StartedAt) {
		t.Fatal("aged low-priority job started after the later high-priority rival: starved")
	}
}

// TestOwnerAccountPriorityIsDefault checks the priority default chain:
// owned jobs inherit the user-account priority, WithPriority overrides
// it, anonymous jobs default to 0.
func TestOwnerAccountPriorityIsDefault(t *testing.T) {
	env := newEnv(t, Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 73}})
	ctx := context.Background()
	g := soakGraph(t, 1)

	// The provisioned account user_k has priority 5.
	owned, err := env.Submit(ctx, g, WithOwner("user_k"))
	if err != nil {
		t.Fatal(err)
	}
	if got := owned.Priority(); got != 5 {
		t.Errorf("owned job priority = %d, want the account's 5", got)
	}
	overridden, err := env.Submit(ctx, g, WithOwner("user_k"), WithPriority(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := overridden.Priority(); got != 9 {
		t.Errorf("overridden priority = %d, want 9", got)
	}
	anon, err := env.Submit(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := anon.Priority(); got != 0 {
		t.Errorf("anonymous priority = %d, want 0", got)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env.Drain(waitCtx); err != nil {
		t.Fatal(err)
	}
}

// TestCancelQueuedJob verifies that canceling a queued job drops it
// before any scheduling work: terminal state canceled, ErrJobCanceled
// from Wait, and the job never starts.
func TestCancelQueuedJob(t *testing.T) {
	env := saturatedEnv(t, 74, 0)
	ctx := context.Background()
	// Occupy the worker and run slot.
	for i := 0; i < 2; i++ {
		if _, err := env.Submit(ctx, soakGraph(t, 1), WithPriority(10)); err != nil {
			t.Fatal(err)
		}
	}
	victim, err := env.Submit(ctx, soakGraph(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if err := victim.Wait(ctx); !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("Wait after cancel = %v, want ErrJobCanceled", err)
	}
	if got := victim.State(); got != JobCanceled {
		t.Fatalf("state = %v, want JobCanceled", got)
	}
	if !victim.Status().StartedAt.IsZero() {
		t.Fatal("canceled queued job reports a start time")
	}
	// Cancel is idempotent.
	victim.Cancel()
	env.Console.Resume()
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env.Drain(waitCtx); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRunningJob verifies that Cancel flows into the execution
// engine's cancellation path: a running job (parked at the suspended
// console inside Execute) terminalizes as canceled.
func TestCancelRunningJob(t *testing.T) {
	env := saturatedEnv(t, 75, 0)
	ctx := context.Background()
	job, err := env.Submit(ctx, soakGraph(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job is running (parked at the console gate).
	deadline := time.Now().Add(30 * time.Second)
	for job.State() != JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started running; state %v", job.State())
		}
		time.Sleep(time.Millisecond)
	}
	job.Cancel()
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := job.Wait(waitCtx); !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("Wait after running cancel = %v, want ErrJobCanceled", err)
	}
	if got := job.State(); got != JobCanceled {
		t.Fatalf("state = %v, want JobCanceled", got)
	}
}

// TestDeadlineDropsQueuedJob verifies that a queued job whose deadline
// expires is dropped before it reaches a scheduler worker.
func TestDeadlineDropsQueuedJob(t *testing.T) {
	env := saturatedEnv(t, 76, 0)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := env.Submit(ctx, soakGraph(t, 1), WithPriority(10)); err != nil {
			t.Fatal(err)
		}
	}
	doomed, err := env.Submit(ctx, soakGraph(t, 1),
		WithDeadline(time.Now().Add(20*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	// Eager expiry: the job terminalizes at its deadline while the queue
	// is still choked — no worker pop, no console resume needed.
	expCtx, cancelExp := context.WithTimeout(ctx, 10*time.Second)
	defer cancelExp()
	if err := doomed.Wait(expCtx); !errors.Is(err, ErrJobDeadlineExceeded) {
		t.Fatalf("Wait = %v, want ErrJobDeadlineExceeded", err)
	}
	env.Console.Resume()
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if !doomed.Status().StartedAt.IsZero() {
		t.Fatal("deadline-dropped job reports a start time")
	}
	if err := env.Drain(waitCtx); err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline is rejected at submit time.
	if _, err := env.Submit(ctx, soakGraph(t, 1),
		WithDeadline(time.Now().Add(-time.Second))); !errors.Is(err, ErrJobDeadlineExceeded) {
		t.Fatalf("expired-deadline submit = %v, want ErrJobDeadlineExceeded", err)
	}
}

// TestWaitPrefersJobErrorOverContext pins the Done/Wait contract: a job
// that is already terminal reports its own error even when Wait's ctx is
// also done.
func TestWaitPrefersJobErrorOverContext(t *testing.T) {
	env := newEnv(t, Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 77}})
	ctx := context.Background()
	job, err := env.Submit(ctx, soakGraph(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	canceledCtx, cancel := context.WithCancel(ctx)
	cancel()
	// Terminal job + dead context: the job's own (nil) error wins.
	if err := job.Wait(canceledCtx); err != nil {
		t.Fatalf("Wait on finished job with canceled ctx = %v, want nil", err)
	}
	// A failed job reports its failure, not the ctx error.
	bad, err := env.Submit(ctx, soakGraph(t, 1), WithHomeSite(0), WithMaxHosts(99))
	if err != nil {
		t.Fatal(err)
	}
	<-bad.Done()
	if bad.Err() != nil {
		// k is clamped by the scheduler, so this may legitimately
		// succeed; only check consistency between Wait and Err.
		if werr := bad.Wait(canceledCtx); !errors.Is(werr, bad.Err()) {
			t.Fatalf("Wait = %v, Err = %v; want Wait to report the job error", werr, bad.Err())
		}
	}
	// In-flight job + dead context: Wait returns the ctx error.
	env2 := saturatedEnv(t, 78, 0)
	parked, err := env2.Submit(ctx, soakGraph(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := parked.Wait(canceledCtx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on in-flight job with canceled ctx = %v, want context.Canceled", err)
	}
	env2.Console.Resume()
	waitCtx, cancelWait := context.WithTimeout(ctx, 2*time.Minute)
	defer cancelWait()
	if err := env2.Drain(waitCtx); err != nil {
		t.Fatal(err)
	}
}

// TestListJobsFiltersAndOrders covers Environment.ListJobs: owner/state
// filtering and stable (submit time, then ID) ordering with live queue
// positions.
func TestListJobsFiltersAndOrders(t *testing.T) {
	env := saturatedEnv(t, 79, 0)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := env.Submit(ctx, soakGraph(t, 1), WithOwner("user_k")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := env.Submit(ctx, soakGraph(t, 1)); err != nil {
		t.Fatal(err)
	}

	all := env.ListJobs("", "")
	if len(all) != 5 {
		t.Fatalf("ListJobs(all) = %d entries, want 5", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].SubmittedAt.Before(all[i-1].SubmittedAt) {
			t.Fatalf("ListJobs out of submit order at %d: %+v", i, all)
		}
	}
	owned := env.ListJobs("user_k", "")
	if len(owned) != 4 {
		t.Fatalf("ListJobs(user_k) = %d entries, want 4", len(owned))
	}
	queued := env.ListJobs("", services.JobStateQueued)
	for _, s := range queued {
		if s.QueuePosition == 0 {
			t.Fatalf("queued job %s has no queue position: %+v", s.ID, s)
		}
	}
	if _, ok := env.Job(all[0].ID); !ok {
		t.Fatalf("Job(%s) not found", all[0].ID)
	}
	if _, ok := env.Job("job-404"); ok {
		t.Fatal("Job of unknown ID succeeded")
	}
	if err := env.CancelJob("job-404"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("CancelJob(unknown) = %v, want ErrUnknownJob", err)
	}
	env.Console.Resume()
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env.Drain(waitCtx); err != nil {
		t.Fatal(err)
	}
}

// TestDeprecatedSubmitOwnedStillWorks pins the migration wrapper: the
// deprecated entrypoint must behave exactly like the options form it
// forwards to (owner, account priority, domain-clamped k).
func TestDeprecatedSubmitOwnedStillWorks(t *testing.T) {
	env := newEnv(t, Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 80}})
	ctx := context.Background()
	//lint:ignore SA1019 the wrapper's behavior is exactly what is under test
	job, err := env.SubmitOwned(ctx, "user_k", soakGraph(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if job.Owner != "user_k" || job.Priority() != 5 {
		t.Fatalf("wrapper produced owner %q priority %d, want user_k/5", job.Owner, job.Priority())
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}
