//go:build race

package vdce

// raceEnabled reports whether the race detector instruments this build;
// allocation guardrails skip under it because instrumentation changes
// allocation counts.
const raceEnabled = true
