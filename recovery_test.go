package vdce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"vdce/internal/afg"
	"vdce/internal/services"
	"vdce/internal/testbed"
)

// spinJobGraph builds a one-task graph over the catalog's Spin task,
// busy-working for roughly ms milliseconds of base-processor time — the
// knob the restart tests use to hold a job in the running state.
func spinJobGraph(name string, ms int) *afg.Graph {
	g := afg.NewGraph(name)
	id := g.AddTask("Spin", "util", 0, 1)
	g.Tasks[id].Props.Args = map[string]string{"ms": fmt.Sprint(ms)}
	return g
}

// durableCfg is the restart tests' shared configuration: a small
// two-site testbed and a deliberately serialized pipeline (one worker,
// one run slot) so the pre-crash mix of queued/in-flight jobs is
// deterministic.
func durableCfg(dir string) Config {
	return Config{
		Testbed:  testbed.Config{Sites: 2, HostsPerGroup: 3, Seed: 11, BaseLoadMax: 0.2},
		Pipeline: PipelineConfig{SchedulerWorkers: 1, MaxConcurrentRuns: 1},
		StoreDir: dir,
	}
}

// waitState polls until the job reaches the wanted state or the timeout
// expires.
func waitState(t *testing.T, job *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if job.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %v (state %v, err %v)", job.ID, want, job.State(), job.Err())
}

// TestCrashRestartRecovery is the durability subsystem's end-to-end
// contract: a control plane holding a mix of done, running, and queued
// jobs dies without a graceful flush (SIGKILL-equivalent), and a second
// incarnation on the same store re-admits 100% of the queued jobs with
// owner, priority, share weight, deadline, and labels intact — and in
// the same within-owner dispatch order — re-dispatches the in-flight
// job to a terminal state, and retains the terminal one.
func TestCrashRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	env, err := New(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// One job driven to done before the crash.
	doneJob, err := env.Submit(ctx, spinJobGraph("pre-done", 1), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := doneJob.Wait(ctx); err != nil {
		t.Fatalf("pre-crash job: %v", err)
	}

	// One job held in the running state across the crash window.
	runningJob, err := env.Submit(ctx, spinJobGraph("pre-running", 2500), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, runningJob, JobRunning)

	// A backlog for one owner with distinct admission parameters. The
	// single worker is parked behind the running job's run slot, so at
	// most one of these leaves the queued state before the crash.
	deadline := time.Now().Add(time.Hour).Truncate(time.Millisecond)
	labels := map[string]string{"team": "ops"}
	priorities := []int{5, 1, 3, 9}
	queued := make([]*Job, len(priorities))
	for i, prio := range priorities {
		opts := []SubmitOption{
			WithOwner("alice"), WithPriority(prio), WithShareWeight(4),
		}
		if i == 0 {
			opts = append(opts, WithDeadline(deadline), WithLabels(labels))
		}
		queued[i], err = env.Submit(ctx, spinJobGraph(fmt.Sprintf("backlog-%d", i), 1), opts...)
		if err != nil {
			t.Fatal(err)
		}
	}

	doneID, runningID := doneJob.ID, runningJob.ID
	env.Crash()

	env2, err := New(durableCfg(dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer env2.Close()

	rep := env2.Recovery()
	total := rep.QueuedRecovered + rep.InFlightRedispatched + rep.TerminalRetained
	if total != 2+len(queued) {
		t.Fatalf("recovery covered %d jobs, want %d: %+v", total, 2+len(queued), rep)
	}
	if rep.TerminalRetained != 1 {
		t.Fatalf("TerminalRetained = %d, want 1: %+v", rep.TerminalRetained, rep)
	}
	if rep.InFlightRedispatched < 1 {
		t.Fatalf("InFlightRedispatched = %d, want >= 1: %+v", rep.InFlightRedispatched, rep)
	}
	if rep.QueuedRecovered+rep.InFlightRedispatched != 1+len(queued) {
		t.Fatalf("non-terminal recovery = %d, want %d: %+v",
			rep.QueuedRecovered+rep.InFlightRedispatched, 1+len(queued), rep)
	}

	// The done job is retained with its terminal status.
	if s, ok := env2.Job(doneID); !ok || s.State != services.JobStateDone {
		t.Fatalf("retained done job = %+v (found %v)", s, ok)
	}
	// The in-flight job is re-adopted, marked recovered, and re-dispatched.
	if s, ok := env2.Job(runningID); !ok || !s.Recovered {
		t.Fatalf("re-adopted running job = %+v (found %v)", s, ok)
	}

	// Admission parameters survive byte for byte.
	for i, j := range queued {
		s, ok := env2.Job(j.ID)
		if !ok {
			t.Fatalf("queued job %s lost in recovery", j.ID)
		}
		if s.Owner != "alice" || s.Priority != priorities[i] || s.ShareWeight != 4 {
			t.Fatalf("job %s recovered as %+v, want owner=alice priority=%d weight=4",
				j.ID, s, priorities[i])
		}
		if i == 0 {
			if !s.Deadline.Equal(deadline) {
				t.Fatalf("job %s deadline = %v, want %v", j.ID, s.Deadline, deadline)
			}
			if s.Labels["team"] != "ops" {
				t.Fatalf("job %s labels = %v, want team=ops", j.ID, s.Labels)
			}
		}
	}

	// A post-restart submission must not collide with recovered IDs.
	fresh, err := env2.Submit(ctx, spinJobGraph("post-restart", 1), WithOwner("alice"), WithPriority(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := env.pipe.byID[fresh.ID]; clash {
		t.Fatalf("post-restart job reused ID %s", fresh.ID)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env2.Drain(drainCtx); err != nil {
		t.Fatalf("post-restart drain: %v", err)
	}
	for _, id := range append([]string{runningID, fresh.ID}, jobIDs(queued)...) {
		s, ok := env2.Job(id)
		if !ok || s.State != services.JobStateDone {
			t.Fatalf("job %s after drain = %+v (found %v)", id, s, ok)
		}
	}

	// Within one owner the recovered backlog drains in the pre-crash
	// dispatch order: priority descending (aging differences are dwarfed
	// by the 30s-per-level step). Completion order is dispatch order
	// because the pipeline is fully serialized.
	finished := make([]*Job, len(queued))
	copy(finished, queued)
	sort.Slice(finished, func(a, b int) bool {
		sa, _ := env2.Job(finished[a].ID)
		sb, _ := env2.Job(finished[b].ID)
		return sa.FinishedAt.Before(sb.FinishedAt)
	})
	var got []int
	for _, j := range finished {
		s, _ := env2.Job(j.ID)
		got = append(got, s.Priority)
	}
	if !sort.IsSorted(sort.Reverse(sort.IntSlice(got))) {
		t.Fatalf("recovered backlog completed in priority order %v, want descending", got)
	}
}

func jobIDs(jobs []*Job) []string {
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}
	return ids
}

// TestGracefulRestartRecovery checks the Close-side contract: a
// graceful shutdown fails in-flight work with ErrPipelineClosed in
// memory, but durably those jobs stay queued/running (persistence of
// shutdown-induced terminals is suppressed), so the next boot re-adopts
// them. It also checks the event-stream restart contract: the new
// broker's cursors start above every pre-restart cursor, and a stale
// Last-Event-ID resume is detected as a gap instead of silently
// replaying the wrong events.
func TestGracefulRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	env, err := New(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	runningJob, err := env.Submit(ctx, spinJobGraph("g-running", 2500), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, runningJob, JobRunning)
	var queued []*Job
	for i := 0; i < 3; i++ {
		j, err := env.Submit(ctx, spinJobGraph(fmt.Sprintf("g-backlog-%d", i), 1), WithOwner("alice"))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	preCursor := env.pipe.events.Cursor()
	env.Close()

	// In memory the graceful stop failed them; durably they are still
	// queued/running.
	if err := runningJob.Err(); err == nil {
		t.Fatal("running job reported success despite shutdown")
	}

	env2, err := New(durableCfg(dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer env2.Close()
	rep := env2.Recovery()
	if rep.QueuedRecovered+rep.InFlightRedispatched != 1+len(queued) {
		t.Fatalf("graceful restart recovered %+v, want %d non-terminal jobs", rep, 1+len(queued))
	}

	// The restarted broker's first cursor is strictly above every cursor
	// the previous incarnation issued...
	if got := env2.pipe.events.Cursor(); got <= preCursor {
		t.Fatalf("restarted broker cursor = %d, want > pre-restart %d", got, preCursor)
	}
	// ...so a client resuming with a pre-restart cursor is told it missed
	// events (the SSE layer then sends its reset comment and a snapshot)
	// rather than silently resuming with a gap.
	sub, _, missed := env2.pipe.events.Subscribe(preCursor, 1, nil)
	sub.Close()
	if !missed {
		t.Fatal("stale pre-restart cursor resumed without a gap signal")
	}

	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env2.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range append(queued, runningJob) {
		s, ok := env2.Job(j.ID)
		if !ok || s.State != services.JobStateDone {
			t.Fatalf("job %s after graceful restart = %+v (found %v)", j.ID, s, ok)
		}
	}
}

// TestOwnerAdminPersistsAcrossRestart drives the PATCH-backed owner
// admin path through Environment.UpdateOwner, restarts gracefully, and
// checks the pinned weight and quota override both survive and are
// enforced by the recovered admission queue.
func TestOwnerAdminPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	env, err := New(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	weight, maxQueued := 7, 2
	s, err := env.UpdateOwner("alice", services.OwnerUpdate{Weight: &weight, MaxQueued: &maxQueued})
	if err != nil {
		t.Fatal(err)
	}
	if s.Weight != 7 || !s.WeightPinned || s.MaxQueued != 2 {
		t.Fatalf("UpdateOwner returned %+v", s)
	}
	if _, err := env.UpdateOwner("alice", services.OwnerUpdate{}); err == nil {
		t.Fatal("empty owner update accepted")
	}
	env.Close()

	env2, err := New(durableCfg(dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer env2.Close()
	var found bool
	for _, o := range env2.Owners() {
		if o.Owner == "alice" {
			found = true
			if o.Weight != 7 || !o.WeightPinned || o.MaxQueued != 2 {
				t.Fatalf("recovered owner admin = %+v", o)
			}
		}
	}
	if !found {
		t.Fatal("owner admin record lost across restart")
	}

	// The recovered cap is live: hold the single worker busy so alice's
	// submissions stay queued, then exceed the recovered MaxQueued of 2.
	ctx := context.Background()
	hold, err := env2.Submit(ctx, spinJobGraph("hold", 2500), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hold, JobRunning)
	for i := 0; i < 2; i++ {
		if _, err := env2.Submit(ctx, spinJobGraph(fmt.Sprintf("capped-%d", i), 1), WithOwner("alice")); err != nil {
			t.Fatalf("submission %d under the cap rejected: %v", i, err)
		}
	}
	if _, err := env2.Submit(ctx, spinJobGraph("over-cap", 1), WithOwner("alice")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-cap submission error = %v, want ErrQuotaExceeded", err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env2.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDeadlineExpiredAtReplay pins the recovery-replay deadline gap:
// a job that was queued at the crash and whose deadline passed while
// the control plane was down must be terminalized as deadline-exceeded
// during replay — with a stream event, visible in the recovery report —
// and must never be dispatched, instead of being re-admitted and
// burning scheduler and host capacity on work that is already lost.
func TestDeadlineExpiredAtReplay(t *testing.T) {
	dir := t.TempDir()
	env, err := New(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Hold the single run slot so the deadline job stays queued.
	hold, err := env.Submit(ctx, spinJobGraph("hold", 2500), WithOwner("bob"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hold, JobRunning)

	deadline := time.Now().Add(50 * time.Millisecond).Truncate(time.Millisecond)
	doomed, err := env.Submit(ctx, spinJobGraph("doomed", 1),
		WithOwner("alice"), WithDeadline(deadline))
	if err != nil {
		t.Fatal(err)
	}
	// A sibling without a deadline must still be re-admitted normally.
	survivor, err := env.Submit(ctx, spinJobGraph("survivor", 1), WithOwner("alice"))
	if err != nil {
		t.Fatal(err)
	}
	env.Crash()

	// The control plane stays down past the doomed job's deadline.
	time.Sleep(time.Until(deadline) + 20*time.Millisecond)

	env2, err := New(durableCfg(dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer env2.Close()

	rep := env2.Recovery()
	if rep.DeadlineExpiredAtReplay != 1 {
		t.Fatalf("DeadlineExpiredAtReplay = %d, want 1: %+v", rep.DeadlineExpiredAtReplay, rep)
	}
	s, ok := env2.Job(doomed.ID)
	if !ok {
		t.Fatalf("expired job %s lost in recovery", doomed.ID)
	}
	if s.State != services.JobStateFailed || s.Error != ErrJobDeadlineExceeded.Error() {
		t.Fatalf("expired job recovered as %+v, want failed/deadline-exceeded", s)
	}
	if !s.FinishedAt.Equal(deadline) {
		t.Fatalf("expired job finished at %v, want its deadline %v", s.FinishedAt, deadline)
	}

	// The terminalization was published to the event stream (unlike
	// plain terminal restores, which rebuild the board silently).
	// after=1 (not 0, which subscribes to new events only) replays the
	// retained ring: the replay-time terminalization must be in it.
	sub, replay, _ := env2.pipe.events.Subscribe(1, 8, nil)
	defer sub.Close()
	var streamed bool
	for _, ev := range replay {
		if ev.Job.ID == doomed.ID && ev.Job.State == services.JobStateFailed {
			streamed = true
		}
	}
	if !streamed {
		t.Fatal("deadline-expired terminalization produced no stream event")
	}

	// The expired job is terminal now: Wait returns the deadline error
	// without the job ever dispatching, and the rest of the recovered
	// workload drains to done around it.
	recovered, ok := env2.pipe.byID[doomed.ID]
	if !ok {
		t.Fatalf("expired job %s missing from pipeline", doomed.ID)
	}
	if err := recovered.Wait(ctx); !errors.Is(err, ErrJobDeadlineExceeded) {
		t.Fatalf("Wait on expired job = %v, want ErrJobDeadlineExceeded", err)
	}
	if !s.StartedAt.IsZero() {
		t.Fatalf("expired job has a start time %v: it was dispatched", s.StartedAt)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := env2.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{hold.ID, survivor.ID} {
		if s, ok := env2.Job(id); !ok || s.State != services.JobStateDone {
			t.Fatalf("job %s after drain = %+v (found %v)", id, s, ok)
		}
	}
	// A second restart retains the expired job as plain terminal — no
	// double-count of the replay terminalization.
	env2.Close()
	env3, err := New(durableCfg(dir))
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	defer env3.Close()
	if rep := env3.Recovery(); rep.DeadlineExpiredAtReplay != 0 {
		t.Fatalf("second replay re-expired the job: %+v", rep)
	}
	if s, ok := env3.Job(doomed.ID); !ok || s.State != services.JobStateFailed {
		t.Fatalf("expired job after second restart = %+v (found %v)", s, ok)
	}
}
