package vdce

// Owner-scaling benchmarks for the admission rewrite (ISSUE 10): pop
// cost as the owner population grows from 1 to 10k, measured for both
// the eligible-owner index (the shipping arbiter) and the retained
// linear-scan reference (the pre-index baseline). CI runs these at
// -benchtime=1x as a smoke; EXPERIMENTS.md records the curve.

import (
	"fmt"
	"testing"
	"time"
)

// benchPopOwners measures one fairly-arbitrated pop with `owners`
// backlogged owners, refilling the queue outside the timer whenever it
// drains. Jobs are prebuilt and reused: push reads only the submission
// fields, so a refill costs pushes, not allocations.
func benchPopOwners(b *testing.B, owners int, linear bool) {
	const perOwner = 4
	base := time.Unix(30000, 0)
	jobs := make([]*Job, 0, owners*perOwner)
	for o := 0; o < owners; o++ {
		owner := fmt.Sprintf("bench-%d", o)
		weight := 1 + o%4
		for k := 0; k < perOwner; k++ {
			jobs = append(jobs, mkAdmitJob(fmt.Sprintf("b%d-%d", o, k), owner, k%3, weight,
				base.Add(time.Duration(o*perOwner+k)*time.Microsecond)))
		}
	}
	var q *admitQueue
	remaining := 0
	refill := func() {
		q = newAdmitQueue(time.Second, QuotaConfig{})
		for _, j := range jobs {
			q.push(j)
		}
		remaining = len(jobs)
	}
	refill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if remaining == 0 {
			b.StopTimer()
			refill()
			b.StartTimer()
		}
		var j *Job
		if linear {
			j = q.popLinear()
		} else {
			j = q.pop()
		}
		if j == nil {
			b.Fatal("pop returned nil with a backlogged queue")
		}
		remaining--
	}
}

// BenchmarkAdmission10kOwners is the acceptance curve: indexed pop cost
// must stay near-flat in owner count while the linear baseline grows
// with it (>= 10x apart at 10k owners).
func BenchmarkAdmission10kOwners(b *testing.B) {
	for _, owners := range []int{1, 8, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("owners=%d/indexed", owners), func(b *testing.B) {
			benchPopOwners(b, owners, false)
		})
		b.Run(fmt.Sprintf("owners=%d/linear", owners), func(b *testing.B) {
			benchPopOwners(b, owners, true)
		})
	}
}

// BenchmarkAdmissionCancelStorm measures one cancel against a deep
// 10k-job, 1k-owner backlog — the satellite-1 hot path, O(log backlog)
// via the location index.
func BenchmarkAdmissionCancelStorm(b *testing.B) {
	const (
		jobsN  = 10_000
		owners = 1_000
	)
	base := time.Unix(31000, 0)
	jobs := make([]*Job, jobsN)
	for i := range jobs {
		jobs[i] = mkAdmitJob(fmt.Sprintf("c%d", i), fmt.Sprintf("storm-%d", i%owners), i%5, 1+i%3,
			base.Add(time.Duration(i)*time.Microsecond))
	}
	var q *admitQueue
	remaining := 0
	refill := func() {
		q = newAdmitQueue(time.Second, QuotaConfig{})
		for _, j := range jobs {
			q.push(j)
		}
		remaining = len(jobs)
	}
	refill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if remaining == 0 {
			b.StopTimer()
			refill()
			b.StartTimer()
		}
		remaining--
		if !q.remove(jobs[remaining].ID) {
			b.Fatalf("remove(%q) missed a queued job", jobs[remaining].ID)
		}
	}
}
