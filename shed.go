package vdce

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vdce/internal/afg"
)

// Adaptive load shedding. Before this layer existed, Submit on a full
// queue blocked until a slot freed or the caller's context expired — so
// a sustained overload turned every submitter into a parked goroutine
// and an HTTP client into a hung request. With shedding enabled
// (ShedConfig.MaxSubmitWait > 0) the admission path fails fast instead:
// a typed *ShedError names why the submission was refused and how long
// the client should wait before retrying. The editor maps it to
// 503 + Retry-After, next to the 429 + Retry-After quota vocabulary.

// Shed reasons carried by ShedError.
const (
	// ShedQueueFull: the admission queue stayed full for the whole
	// bounded wait.
	ShedQueueFull = "queue-full"
	// ShedDeadlineInfeasible: the job's deadline cannot be met even by
	// the task-performance database's lower-bound estimate (the graph's
	// critical path at catalog/learned base times), so admitting it
	// would only burn capacity on work that is already lost.
	ShedDeadlineInfeasible = "deadline-infeasible"
	// ShedBreakerSaturated: too large a fraction of the site's hosts sit
	// behind open circuit breakers to place new work responsibly.
	ShedBreakerSaturated = "breaker-saturated"
)

// ErrShed matches every shed rejection via errors.Is.
var ErrShed = errors.New("vdce: submission shed")

// ShedError is the typed rejection of an overloaded admission path.
type ShedError struct {
	// Reason is one of the Shed* constants.
	Reason string
	// RetryAfter is the suggested client backoff; HTTP surfaces emit it
	// as a Retry-After header.
	RetryAfter time.Duration
	// Detail elaborates (queue depth, estimate vs deadline, open-host
	// fraction).
	Detail string
}

func (e *ShedError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%v (%s): %s", ErrShed, e.Reason, e.Detail)
	}
	return fmt.Sprintf("%v (%s)", ErrShed, e.Reason)
}

// Is lets errors.Is(err, ErrShed) match the typed rejection.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// ShedConfig tunes adaptive load shedding at admission. The zero value
// disables shedding entirely, preserving the legacy block-until-slot
// behavior.
type ShedConfig struct {
	// MaxSubmitWait bounds how long Submit may wait for a queue slot
	// before shedding with reason queue-full. 0 disables shedding.
	MaxSubmitWait time.Duration
	// RetryAfter is the backoff hint carried by ShedError (default 1s).
	RetryAfter time.Duration
	// CheckDeadline enables the deadline-infeasibility estimate: a
	// submission whose deadline is closer than the graph's critical-path
	// lower bound (task-performance base times) sheds immediately.
	CheckDeadline bool
	// BreakerSaturation sheds new submissions while at least this
	// fraction of the testbed's hosts have open circuit breakers
	// (0 disables; sensible values sit around 0.5–0.75).
	BreakerSaturation float64
	// UnreadyShedRate is the /readyz threshold: the environment reports
	// not-ready while more than this fraction of recent submissions was
	// shed (default 0.5, over MeterWindow).
	UnreadyShedRate float64
	// MeterWindow is the sliding window of the shed-rate meter
	// (default 5s).
	MeterWindow time.Duration
	// Now supplies the meter clock (default time.Now); tests inject a
	// synthetic one.
	Now func() time.Time
}

func (c *ShedConfig) fillDefaults() {
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.UnreadyShedRate <= 0 {
		c.UnreadyShedRate = 0.5
	}
	if c.MeterWindow <= 0 {
		c.MeterWindow = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// enabled reports whether the admission path sheds at all.
func (c *ShedConfig) enabled() bool { return c.MaxSubmitWait > 0 }

// shedMeter measures the recent shed rate over a two-bucket sliding
// window: cheap, lock-scoped, and exact enough for a readiness gate.
type shedMeter struct {
	now  func() time.Time
	half time.Duration

	mu       sync.Mutex
	curStart time.Time
	cur      meterBucket
	prev     meterBucket
	// totals are lifetime counters for reports and tests.
	totalAccepted int64
	totalShed     int64
}

type meterBucket struct {
	accepted int
	shed     int
}

func newShedMeter(window time.Duration, now func() time.Time) *shedMeter {
	return &shedMeter{now: now, half: window / 2, curStart: now()}
}

// roll ages the buckets; callers hold m.mu.
func (m *shedMeter) roll(now time.Time) {
	for !now.Before(m.curStart.Add(m.half)) {
		m.prev, m.cur = m.cur, meterBucket{}
		m.curStart = m.curStart.Add(m.half)
		if now.Sub(m.curStart) > 2*m.half {
			// Idle gap longer than the window: skip straight to now.
			m.prev = meterBucket{}
			m.curStart = now
		}
	}
}

func (m *shedMeter) record(shed bool) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.roll(now)
	if shed {
		m.cur.shed++
		m.totalShed++
	} else {
		m.cur.accepted++
		m.totalAccepted++
	}
}

// rate returns the windowed shed fraction and sample count.
func (m *shedMeter) rate() (float64, int) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.roll(now)
	shed := m.cur.shed + m.prev.shed
	total := shed + m.cur.accepted + m.prev.accepted
	if total == 0 {
		return 0, 0
	}
	return float64(shed) / float64(total), total
}

// totals returns the lifetime accepted/shed counters.
func (m *shedMeter) totals() (accepted, shed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalAccepted, m.totalShed
}

// shedError builds one rejection with the configured backoff hint.
func (c *ShedConfig) shedError(reason, detail string) *ShedError {
	return &ShedError{Reason: reason, RetryAfter: c.RetryAfter, Detail: detail}
}

// preAdmitShed runs the estimate-based shed checks that need no queue
// slot: breaker saturation and deadline infeasibility. It returns nil
// when the submission may proceed to admission.
func (p *pipeline) preAdmitShed(spec submitSpec) *ShedError {
	cfg := &p.shed
	if !cfg.enabled() {
		return nil
	}
	if cfg.BreakerSaturation > 0 && p.env.Breakers != nil {
		total := len(p.env.TB.AllHosts())
		if frac := p.env.Breakers.OpenFraction(total); frac >= cfg.BreakerSaturation {
			return cfg.shedError(ShedBreakerSaturated,
				fmt.Sprintf("%.0f%% of %d hosts quarantined", frac*100, total))
		}
	}
	if cfg.CheckDeadline && !spec.deadline.IsZero() {
		if est, ok := p.minCompletionEstimate(spec.graph); ok {
			if remaining := time.Until(spec.deadline); remaining < est {
				return cfg.shedError(ShedDeadlineInfeasible,
					fmt.Sprintf("critical-path estimate %v exceeds remaining %v", est, remaining.Round(time.Millisecond)))
			}
		}
	}
	return nil
}

// minCompletionEstimate lower-bounds the graph's completion time from
// the task-performance database: the critical path at per-task base
// times, ignoring queueing, placement, and communication — anything the
// estimate omits only makes the true completion later, so a deadline
// the estimate already misses is genuinely infeasible.
func (p *pipeline) minCompletionEstimate(g *afg.Graph) (time.Duration, bool) {
	cost, err := p.env.CostFunc(g)
	if err != nil {
		// Unknown tasks fail later with a better error; never shed on a
		// missing estimate.
		return 0, false
	}
	_, seconds, err := g.CriticalPath(cost)
	if err != nil || seconds <= 0 {
		return 0, false
	}
	return time.Duration(seconds * float64(time.Second)), true
}

// ShedStats reports the pipeline's lifetime admission counters:
// accepted submissions and shed rejections.
func (env *Environment) ShedStats() (accepted, shed int64) {
	return env.pipe.meter.totals()
}

// Ready reports whether the environment should receive traffic, with a
// human-readable reason when it should not: the /readyz verdict. The
// environment is not ready while the recovery replay of a durable store
// still has re-admitted jobs waiting to reach a scheduler (the backlog
// belongs to the previous incarnation, not new clients) and while the
// admission path is shedding more than the configured fraction of
// recent submissions.
func (env *Environment) Ready() (bool, string) {
	p := env.pipe
	if n := p.recoveryPending.Load(); n > 0 {
		return false, fmt.Sprintf("recovery replay: %d re-admitted jobs pending", n)
	}
	if p.shed.enabled() {
		if rate, total := p.meter.rate(); total >= 4 && rate > p.shed.UnreadyShedRate {
			return false, fmt.Sprintf("shedding %.0f%% of recent submissions", rate*100)
		}
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return false, "pipeline closed"
	}
	return true, "ok"
}
