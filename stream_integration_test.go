package vdce

// End-to-end coverage of the PR 6 streaming and pagination surface
// through the editor's HTTP mount: SSE watch-to-done without a single
// list poll, cursor/offset pagination equivalence over a live seeded
// board, and the generation-cached admission position replay.

import (
	"bufio"
	"context"
	"encoding/json"
	"maps"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"vdce/internal/jobsapi"
	"vdce/internal/services"
)

// sseFrames reads SSE frames off an open response body, invoking fn per
// event until the stream ends or fn returns false.
func sseFrames(t *testing.T, body *bufio.Reader, fn func(jobsapi.StreamEvent) bool) {
	t.Helper()
	var data string
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "data: "):
			data = line[6:]
		case line == "" && data != "":
			var ev jobsapi.StreamEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			data = ""
			if !fn(ev) {
				return
			}
		}
	}
}

// TestStreamWatchJobToDone is the submit-watch-done acceptance path: a
// client submits through the editor, subscribes to the job's event
// stream, and observes queued -> ... -> done purely from pushed events —
// it never lists or polls job status.
func TestStreamWatchJobToDone(t *testing.T) {
	env := saturatedEnv(t, 95, 0)
	ts := httptest.NewServer(env.EditorServer(true, 0).Handler())
	defer ts.Close()
	c := newJobsClient(t, ts.URL, "user_k", "vdce")
	// Backlog one job so ours observably waits in the queue.
	c.submitV1(t, c.importApp(t, 1), nil)
	id := c.submitV1(t, c.importApp(t, 2), nil)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("stream open = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	var states []string
	var sawSnapshot bool
	got := make(chan struct{})
	go func() {
		defer close(got)
		first := true
		sseFrames(t, bufio.NewReader(resp.Body), func(ev jobsapi.StreamEvent) bool {
			if first {
				first = false
				sawSnapshot = ev.Type == jobsapi.EventSnapshot
				// The subscription precedes the release below, so the first
				// frame must be the pre-release snapshot: still waiting.
				if ev.Job.Terminal() {
					t.Errorf("first frame already terminal: %+v", ev.Job)
				}
			}
			if len(states) == 0 || states[len(states)-1] != ev.Job.State {
				states = append(states, ev.Job.State)
			}
			return !ev.Job.Terminal()
		})
	}()

	// Only after the subscription is live does the backlog move.
	env.Console.Resume()
	select {
	case <-got:
	case <-ctx.Done():
		t.Fatal("stream never reached a terminal event")
	}
	if !sawSnapshot {
		t.Error("stream did not open with a snapshot event")
	}
	if len(states) == 0 || states[len(states)-1] != services.JobStateDone {
		t.Fatalf("streamed states = %v, want a sequence ending in done", states)
	}

	drainCtx, cancelDrain := contextWithTimeout(2 * time.Minute)
	defer cancelDrain()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
}

// TestCursorOffsetPaginationEquivalence tiles one live seeded board
// both ways and requires identical row sequences: the keyset path is a
// drop-in replacement for the deprecated offset path.
func TestCursorOffsetPaginationEquivalence(t *testing.T) {
	env := saturatedEnv(t, 96, 0)
	ts := httptest.NewServer(env.EditorServer(true, 0).Handler())
	defer ts.Close()
	c := newJobsClient(t, ts.URL, "user_k", "vdce")
	const jobsN, page = 11, 3
	for i := 0; i < jobsN; i++ {
		c.submitV1(t, c.importApp(t, i), nil)
	}

	var viaCursor []string
	cursor := ""
	for {
		path := "/v1/jobs?limit=3"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		out := c.do("GET", path, nil, http.StatusOK)
		for _, item := range out["jobs"].([]any) {
			viaCursor = append(viaCursor, item.(map[string]any)["id"].(string))
		}
		cursor, _ = out["next_cursor"].(string)
		if cursor == "" {
			break
		}
	}

	var viaOffset []string
	for offset := 0; offset < jobsN; offset += page {
		out := c.do("GET", "/v1/jobs?limit=3&offset="+strconv.Itoa(offset), nil, http.StatusOK)
		for _, item := range out["jobs"].([]any) {
			viaOffset = append(viaOffset, item.(map[string]any)["id"].(string))
		}
	}

	if !reflect.DeepEqual(viaCursor, viaOffset) {
		t.Fatalf("pagination modes disagree:\n cursor: %v\n offset: %v", viaCursor, viaOffset)
	}
	canonical := env.ListJobs("", "")
	if len(canonical) != len(viaCursor) {
		t.Fatalf("pages covered %d rows, canonical listing has %d", len(viaCursor), len(canonical))
	}
	for i, s := range canonical {
		if viaCursor[i] != s.ID {
			t.Fatalf("row %d = %s via cursor, canonical %s", i, viaCursor[i], s.ID)
		}
	}

	env.Console.Resume()
	drainCtx, cancel := contextWithTimeout(2 * time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
}

// TestQueuePositionCacheMatchesReplay pins the generation-validated
// position cache (satellite of PR 6) against the ground-truth replay:
// cached and freshly replayed positions are identical, repeated reads
// reuse the cached map, and any queue mutation invalidates it.
func TestQueuePositionCacheMatchesReplay(t *testing.T) {
	env := saturatedEnv(t, 97, 0)
	ctx := context.Background()
	for i := 0; i < 9; i++ {
		if _, err := env.Submit(ctx, soakGraph(t, i), WithPriority(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	q := env.pipe.admit

	p1 := q.positions()
	p2 := q.positions()
	if reflect.ValueOf(p1).Pointer() != reflect.ValueOf(p2).Pointer() {
		t.Fatal("unchanged queue recomputed the position replay (cache miss)")
	}
	q.mu.Lock()
	fresh := q.replayPositions("")
	q.mu.Unlock()
	if !maps.Equal(p1, fresh) {
		t.Fatalf("cached positions %v != fresh replay %v", p1, fresh)
	}
	// The single-job surface serves from the same cache.
	for id, pos := range fresh {
		if got := q.position(id); got != pos {
			t.Fatalf("position(%s) = %d, want %d", id, got, pos)
		}
	}

	// Mutation invalidates: cancel the queued job at the back.
	var victim string
	for id, pos := range fresh {
		if pos == len(fresh) {
			victim = id
		}
	}
	if victim == "" {
		t.Fatalf("no job at position %d in %v", len(fresh), fresh)
	}
	if err := env.CancelJob(victim); err != nil {
		t.Fatal(err)
	}
	p3 := q.positions()
	if reflect.ValueOf(p3).Pointer() == reflect.ValueOf(p1).Pointer() {
		t.Fatal("queue mutation did not invalidate the position cache")
	}
	if _, ok := p3[victim]; ok {
		t.Fatalf("canceled job %s still has a queue position", victim)
	}
	if !maps.Equal(p3, func() map[string]int { q.mu.Lock(); defer q.mu.Unlock(); return q.replayPositions("") }()) {
		t.Fatal("post-mutation cache disagrees with a fresh replay")
	}

	env.Console.Resume()
	drainCtx, cancel := contextWithTimeout(2 * time.Minute)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
}
