package vdce

// Streaming soak (ISSUE 6): 32 bounded event subscribers — some
// deliberately slow — stay attached to the pipeline's broker while a
// submission wave executes under fault injection. Acceptance: the
// publisher never blocks (the wave drains on schedule), every
// subscriber observes strictly monotonic cursors, slow consumers are
// evicted rather than stalling the pipeline, and fast consumers see the
// full event history. Run under -race in CI.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"vdce/internal/chaos"
	"vdce/internal/detect"
	"vdce/internal/jobsapi"
	"vdce/internal/testbed"
)

func TestStreamingSoak32SubscribersUnderChaos(t *testing.T) {
	jobsN, hostsPerSite := 24, 8
	if testing.Short() {
		jobsN, hostsPerSite = 10, 4
	}
	const subsN = 32

	env, err := New(Config{
		Testbed: testbed.Config{
			Sites: 2, HostsPerGroup: hostsPerSite, Seed: 79,
			SpeedMin: 1, SpeedMax: 2, BaseLoadMax: 0.1, LoadSigma: 0.01,
		},
		StartDaemons:  true,
		MonitorPeriod: 10 * time.Millisecond,
		StartDetector: true,
		Detect: detect.Config{
			SuspicionTimeout: 100 * time.Millisecond,
			ConfirmQuorum:    2,
			TickPeriod:       25 * time.Millisecond,
		},
		Pipeline: PipelineConfig{QueueDepth: 64, SchedulerWorkers: 4, MaxConcurrentRuns: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.Engine.MaxAttempts = 8
	env.Engine.LoadCheckPeriod = 2 * time.Millisecond

	type subReport struct {
		events  int
		evicted bool
		ordered bool
	}
	reports := make([]subReport, subsN)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < subsN; i++ {
		// A spread of buffer sizes: the smallest are meant to fall behind
		// and be evicted; the largest must keep up with everything.
		buffer := 4 << (i % 4 * 2) // 4, 16, 64, 256
		sub, _, _ := env.pipe.events.Subscribe(0, buffer, nil)
		wg.Add(1)
		go func(i int, sub *jobsapi.Subscriber, slow bool) {
			defer wg.Done()
			rep := subReport{ordered: true}
			var last uint64
			for {
				select {
				case ev, open := <-sub.C:
					if !open {
						rep.evicted = sub.Evicted()
						reports[i] = rep
						return
					}
					if ev.Cursor <= last {
						rep.ordered = false
					}
					last = ev.Cursor
					rep.events++
					if slow {
						// A deliberately slow consumer: must be evicted, never
						// allowed to backpressure the pipeline.
						time.Sleep(2 * time.Millisecond)
					}
				case <-stop:
					sub.Close()
					for ev := range sub.C {
						if ev.Cursor <= last {
							rep.ordered = false
						}
						last = ev.Cursor
						rep.events++
					}
					rep.evicted = sub.Evicted()
					reports[i] = rep
					return
				}
			}
		}(i, sub, i%8 == 0)
	}

	// The wave, with a quarter of the fleet killed once placements are
	// in flight.
	jobs := make([]*Job, 0, jobsN)
	for i := 0; i < jobsN; i++ {
		g := spinChain(t, fmt.Sprintf("stream-soak-%d", i), 25)
		job, err := env.Submit(context.Background(), g)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	inj := chaos.NewInjector(env.TB, 11)
	go func() {
		time.Sleep(150 * time.Millisecond)
		_, _ = inj.Apply(chaos.Event{Action: chaos.Kill, Fraction: 0.25})
	}()

	// Publisher-side acceptance: the wave terminalizes on schedule even
	// with slow subscribers attached — Publish never blocked the board.
	drainCtx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := env.Drain(drainCtx); err != nil {
		for _, j := range jobs {
			if j.State() != JobDone && j.State() != JobFailed && j.State() != JobCanceled {
				t.Errorf("job %s stuck in %s", j.ID, j.State())
			}
		}
		t.Fatalf("drain with %d subscribers attached: %v", subsN, err)
	}

	close(stop)
	wg.Wait()

	total := int(env.pipe.events.Cursor())
	if total == 0 {
		t.Fatal("no events were published during the wave")
	}
	evicted := 0
	for i, rep := range reports {
		if !rep.ordered {
			t.Errorf("subscriber %d saw out-of-order cursors", i)
		}
		if rep.evicted {
			evicted++
			continue
		}
		// Survivors drained every event published while they listened.
		if rep.events != total {
			t.Errorf("subscriber %d survived but saw %d of %d events", i, rep.events, total)
		}
	}
	if evicted == subsN {
		t.Errorf("all %d subscribers were evicted; the buffer spread should let large buffers survive", subsN)
	}
	t.Logf("published %d events; %d/%d subscribers evicted as slow consumers", total, evicted, subsN)
}
