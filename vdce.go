// Package vdce is the public facade of the Virtual Distributed Computing
// Environment reproduction: it wires the simulated wide-area testbed,
// the per-site repositories and schedulers, the Control Manager daemons,
// the execution engine, and the Application Editor into one Environment
// that can build, schedule, and execute applications end to end.
//
// The Environment is multi-tenant: alongside the one-shot Run helper it
// runs a concurrent submission pipeline. Submit admits an application
// flow graph — configured with functional options (WithOwner,
// WithPriority, WithDeadline, WithHomeSite, WithMaxHosts, WithLabels) —
// into a bounded fair-share priority queue and returns a *Job handle
// immediately. Within one owner, jobs dequeue by effective priority
// (the owner's user-account priority unless overridden, aged upward
// while the job waits so nothing starves); across owners the queue
// drains by weighted fair queuing (WithShareWeight, defaulting from
// the account priority) with per-owner quotas on queued jobs,
// in-flight jobs, and held hosts (PipelineConfig.Quota), so no single
// user monopolizes the shared testbed. A pool of scheduler workers
// runs core.Scheduler rounds
// concurrently — each job scheduled from its home site (round-robin for
// anonymous submissions, the submitting site for owned ones), so rounds
// spread across sites — and a bounded dispatch path executes
// independent jobs' task graphs simultaneously on the shared testbed
// (one task per machine at a time, enforced engine-wide). Jobs move
// through queued -> scheduling -> running -> done|failed|canceled;
// observe one job with Job.Wait/Job.Done, cancel it with Job.Cancel,
// drain all with Drain, and follow the fleet's lifecycle through the
// Board (services.JobBoard), Jobs, or the versioned /v1/jobs HTTP
// surface (internal/jobsapi, mounted by vdce-server and the editor).
// PipelineConfig in Config sizes the queue, the worker pool, the
// execution concurrency, and the priority-aging rate.
//
// Reproduces Topcuoglu & Hariri, "A Global Computing Environment for
// Networked Resources", ICPP 1997.
package vdce

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"vdce/internal/afg"
	"vdce/internal/breaker"
	"vdce/internal/control"
	"vdce/internal/core"
	"vdce/internal/detect"
	"vdce/internal/editor"
	"vdce/internal/exec"
	"vdce/internal/jobsapi"
	"vdce/internal/netmodel"
	"vdce/internal/obs"
	"vdce/internal/protocol"
	"vdce/internal/repository"
	"vdce/internal/services"
	"vdce/internal/store"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

// Config assembles an Environment.
type Config struct {
	// Testbed shapes the fabricated hardware (sites, groups, hosts).
	Testbed testbed.Config
	// K is the scheduler's nearest-neighbor site count (Fig. 2 step 2).
	K int
	// LoadThreshold is the Application Controller's rescheduling trigger;
	// 0 disables it.
	LoadThreshold float64
	// DilationScale emulates heterogeneous host speeds during execution;
	// 0 disables dilation.
	DilationScale float64
	// UseRPC runs a Site Manager RPC server per site and routes remote
	// host selection over real TCP. When false, sites talk in-process.
	UseRPC bool
	// StartDaemons launches Monitor daemons and Group Managers; their
	// cadence is MonitorPeriod.
	StartDaemons  bool
	MonitorPeriod time.Duration
	// StartDetector runs the heartbeat failure-detection service: every
	// monitor report feeds a per-host last-seen clock, silent hosts move
	// through suspect -> confirmed-dead (quorum), confirmed transitions
	// land in the site repositories as one epoch per round, and tasks
	// running on a confirmed-dead host are interrupted and rescheduled
	// mid-run. Echo-detected failures become quorum votes instead of
	// immediate status flips. With StartDaemons the detector's
	// evaluation loop runs on the wall clock against live heartbeats;
	// without daemons no background loop starts (a wall-clock ticker
	// would condemn hosts fed synthetic timestamps) — synchronous
	// drivers feed heartbeats via RefreshMonitoring and call
	// Detector.Tick themselves with their own clock.
	StartDetector bool
	// Detect tunes the failure detector. Zero fields default relative to
	// MonitorPeriod (suspicion after 4 missed periods, quorum 2, one
	// evaluation round per period).
	Detect detect.Config
	// Pipeline sizes the concurrent submission pipeline behind Submit.
	// The zero value takes the PipelineConfig defaults.
	Pipeline PipelineConfig
	// Retry shapes the execution engine's rescheduling retries: jittered
	// exponential backoff per attempt plus an engine-wide token-bucket
	// retry budget, so a mass host failure cannot multiply load into a
	// retry storm. The zero value keeps the legacy immediate retries.
	Retry exec.RetryConfig
	// StartBreakers runs per-host circuit breakers (internal/breaker):
	// watchdog failures and detector suspicions open a flapping host's
	// breaker, quarantining it from placements until half-open probes
	// succeed. Surfaced on GET /v1/hosts and consulted by the
	// rescheduler and the admission path's breaker-saturation shed.
	StartBreakers bool
	// Breaker tunes the circuit breakers when StartBreakers is set; the
	// zero value takes the breaker defaults.
	Breaker breaker.Config
	// StoreDir, when non-empty, makes the control plane durable: job
	// lifecycle, per-owner admin state, task-performance history, and the
	// event stream's high-water mark are logged to an append-only store
	// under this directory (internal/store), and a restarting Environment
	// replays it — queued jobs re-enter the admission queue with owner,
	// priority, deadline, and share weight intact; in-flight jobs are
	// re-adopted and re-dispatched; terminal jobs reappear on the board.
	// Empty keeps today's purely in-memory behavior.
	StoreDir string
	// Store tunes the durable store (flush interval, compaction cadence)
	// when StoreDir is set; the zero value takes the store defaults.
	Store store.Options
	// Obs is the metrics registry every subsystem records into
	// (admission, scheduler rounds, exec, breakers, WAL, event broker,
	// job phase histograms). Nil creates a fresh registry — there is
	// always one; pass a shared registry to aggregate several
	// environments onto one /metrics page.
	Obs *obs.Registry
	// Logger receives structured logs with job_id/owner correlation from
	// the pipeline, engine, and recovery paths. Nil discards.
	Logger *slog.Logger
}

// Environment is a fully wired VDCE instance.
type Environment struct {
	TB       *testbed.Testbed
	Net      *netmodel.Network
	Registry *tasklib.Registry
	Sites    []*core.LocalSite
	Managers []*control.SiteManager // non-nil when UseRPC
	Groups   []*control.GroupManager
	Engine   *exec.Engine
	Console  *services.Console
	Metrics  *services.Metrics
	// Detector is the failure-detection service (non-nil when
	// Config.StartDetector).
	Detector *detect.Detector
	// Breakers is the per-host circuit-breaker set (non-nil when
	// Config.StartBreakers).
	Breakers *breaker.Set
	// Board tracks every submitted job's lifecycle for monitoring.
	Board *services.JobBoard
	// Store is the durable control-plane log (non-nil when
	// Config.StoreDir was set).
	Store *store.Store
	// Obs is the metrics registry behind GET /metrics: every subsystem's
	// counters, gauges, and histograms. Always non-nil.
	Obs *obs.Registry

	mu            sync.Mutex // guards remoteClients
	remoteClients []*control.RemoteSite
	cancel        context.CancelFunc
	pipe          *pipeline
	// obsM holds the pre-resolved hot-path metric handles; log is the
	// structured logger (discarding when Config.Logger was nil).
	obsM *envMetrics
	log  *slog.Logger
}

// New builds and starts an Environment.
func New(cfg Config) (*Environment, error) {
	tb, err := testbed.Build(cfg.Testbed)
	if err != nil {
		return nil, err
	}
	env := &Environment{
		TB:       tb,
		Net:      tb.Net,
		Registry: tasklib.Default(),
		Console:  services.NewConsole(),
		Metrics:  services.NewMetrics(),
		Board:    services.NewJobBoard(),
		Obs:      cfg.Obs,
		log:      cfg.Logger,
	}
	if env.Obs == nil {
		env.Obs = obs.NewRegistry()
	}
	if env.log == nil {
		env.log = discardLog
	}
	env.obsM = newEnvMetrics(env.Obs)
	// Install the task catalog and a default account at every site.
	for _, site := range tb.Sites {
		names := make([]string, len(site.Hosts))
		for i, h := range site.Hosts {
			names[i] = h.Name
		}
		if err := env.Registry.InstallInto(site.Repo, names); err != nil {
			return nil, err
		}
		if _, err := site.Repo.Users.AddUser("user_k", "vdce", 5, repository.DomainGlobal); err != nil {
			return nil, err
		}
		env.Sites = append(env.Sites, core.NewLocalSite(site.Repo))
	}

	// Open the durable store before anything that will write to it. An
	// unreadable log (including mid-log corruption, surfaced as a typed
	// *store.CorruptError) fails the boot rather than silently dropping
	// state.
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		if cfg.Store.Metrics == nil {
			cfg.Store.Metrics = env.Obs
		}
		st, err = store.Open(cfg.StoreDir, cfg.Store)
		if err != nil {
			return nil, err
		}
		env.Store = st
		// Replay the recovered task-performance history into the site
		// repositories, so the scheduler's execution-time estimates
		// survive the restart instead of resetting to catalog base times.
		// Records for hosts or tasks this testbed no longer has are
		// skipped.
		for _, rec := range st.Recovered().Perf {
			for _, ls := range env.Sites {
				if _, ok := ls.Repo.Resources.View(rec.Host); ok {
					_ = ls.Repo.TaskPerf.RecordExecution(rec.Task, rec.Host, rec.Elapsed, rec.At)
					break
				}
			}
		}
	}

	if cfg.UseRPC {
		for _, ls := range env.Sites {
			sm, err := control.StartSiteManager(ls, "127.0.0.1:0")
			if err != nil {
				env.Close()
				return nil, err
			}
			env.Managers = append(env.Managers, sm)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	env.cancel = cancel
	period := cfg.MonitorPeriod
	if period <= 0 {
		period = 250 * time.Millisecond
	}
	if cfg.StartDetector {
		dcfg := cfg.Detect
		if dcfg.SuspicionTimeout <= 0 {
			// One dropped report must never raise suspicion.
			dcfg.SuspicionTimeout = 4 * period
		}
		if dcfg.TickPeriod <= 0 {
			dcfg.TickPeriod = period
		}
		env.Detector = detect.New(dcfg)
		for _, site := range tb.Sites {
			env.Detector.AddSite(site.Name, site.Repo.Resources)
		}
		// Echo-detected failures arriving over RPC become quorum votes;
		// echo-observed recoveries count as heartbeats.
		for _, sm := range env.Managers {
			sm.InterceptFailureNotices(
				func(n protocol.FailureNotice) bool {
					env.Detector.ReportFailure(n.Host, n.Detected)
					return true
				},
				func(n protocol.RecoveryNotice) bool {
					env.Detector.Observe(n.Host, n.Detected)
					return true
				},
			)
		}
	}
	if cfg.StartDaemons {
		start := time.Now()
		for si, site := range tb.Sites {
			var reporter control.Reporter
			if cfg.UseRPC {
				reporter = env.Managers[si]
			} else {
				// In-process reporter without RPC: a SiteManager is not
				// running, so apply updates directly.
				reporter = directReporter{repo: site.Repo}
			}
			if env.Detector != nil && !cfg.UseRPC {
				// Failure detection is the detector's call now: echo
				// notices become suspicion votes and recovery notices
				// heartbeats, while workload batches flow through. In
				// RPC mode the Site Manager's installed interceptors
				// play this role instead (covering remote leaders too),
				// so exactly one interception layer exists per wiring.
				reporter = detectReporter{next: reporter, det: env.Detector}
			}
			// Every forwarded workload also lands in the visualization
			// service, the paper's "workload visualizations".
			reporter = teeReporter{next: reporter, metrics: env.Metrics, start: start}
			for _, gname := range site.GroupNames() {
				gm := control.NewGroupManager(site.Name, gname, site.GroupHosts(gname), reporter, period)
				gm.EchoPeriod = period
				if env.Detector != nil {
					// Heartbeats come off the unfiltered daemon stream:
					// the significant-change filter spares the site link,
					// but a steady host must not look silent.
					det := env.Detector
					gm.Heartbeat = func(host string, s repository.WorkloadSample) {
						det.Observe(host, s.Time)
					}
				}
				env.Groups = append(env.Groups, gm)
				go gm.Run(ctx)
			}
		}
	}

	var reschedOpts []exec.ReschedulerOption
	if cfg.StartBreakers {
		// Breaker transitions feed the shared opens counter and the
		// structured log on top of any caller-installed hook.
		bcfg := cfg.Breaker
		bcfg.OnTransition = breakerHook(env.obsM, env.log, cfg.Breaker.OnTransition)
		env.Breakers = breaker.New(bcfg)
		reschedOpts = append(reschedOpts, exec.WithBreakers(env.Breakers))
	}
	env.Engine = &exec.Engine{
		Reg:           env.Registry,
		TB:            tb,
		LoadThreshold: cfg.LoadThreshold,
		DilationScale: cfg.DilationScale,
		Reschedule:    exec.NewRescheduler(env.Sites, reschedOpts...),
		Retry:         cfg.Retry,
		Breakers:      env.Breakers,
		Console:       env.Console,
		Metrics:       env.Metrics,
		Log:           cfg.Logger,
	}
	env.Engine.Record = func(rec protocol.ExecutionRecord) {
		// Route the record to the owning site's task-performance DB; the
		// membership probe needs no history, so the slim view suffices.
		for _, site := range env.Sites {
			if _, ok := site.Repo.Resources.View(rec.Host); ok {
				_ = site.Repo.TaskPerf.RecordExecution(rec.Task, rec.Host, rec.Elapsed, rec.At)
				break
			}
		}
		if env.Store != nil {
			// Measurements feed the durable log too, so a restarted
			// control plane schedules with learned estimates, not
			// catalog defaults.
			_ = env.Store.PerfMeasured(store.PerfRecord{
				Task: rec.Task, Host: rec.Host, Elapsed: rec.Elapsed, At: rec.At,
			})
		}
	}
	if env.Detector != nil {
		// Confirmed transitions drive execution: a death interrupts the
		// host's running tasks (they reschedule with the host excluded),
		// a recovery readmits it. The repository side of the transition
		// is already published when subscribers run.
		env.Detector.Subscribe(func(tr detect.Transition) {
			switch tr.To {
			case detect.Suspect:
				// The suspect signal feeds the circuit breakers: a flapping
				// host keeps re-entering suspicion without ever staying
				// silent long enough to be confirmed dead, and the breaker
				// is exactly the accumulator that notices the pattern.
				if env.Breakers != nil {
					env.Breakers.ReportFailure(tr.Host)
				}
			case detect.Dead:
				env.Engine.MarkHostDead(tr.Host)
				if env.Breakers != nil {
					env.Breakers.ReportFailure(tr.Host)
				}
			case detect.Recovered:
				env.Engine.MarkHostAlive(tr.Host)
			}
		})
		if cfg.StartDaemons {
			// The wall-clock evaluation loop only makes sense against
			// live daemon heartbeats; synchronous drivers Tick the
			// detector on their own clock instead.
			go env.Detector.Run(ctx)
		}
	}
	env.pipe = startPipeline(ctx, env, cfg.Pipeline, st)
	env.registerDerived(env.Obs)
	if st != nil {
		r := env.pipe.recovery
		env.log.Info("recovery replay complete",
			"queued_recovered", r.QueuedRecovered,
			"inflight_redispatched", r.InFlightRedispatched,
			"terminal_retained", r.TerminalRetained,
			"deadline_expired", r.DeadlineExpiredAtReplay)
	}
	return env, nil
}

// detectReporter routes a Group Manager's failure-detection notices to
// the failure detector — echo timeouts are votes, not verdicts — while
// workload batches pass through to the repository untouched.
type detectReporter struct {
	next control.Reporter
	det  *detect.Detector
}

func (d detectReporter) ApplyWorkloads(b protocol.WorkloadBatch) error {
	return d.next.ApplyWorkloads(b)
}

func (d detectReporter) ApplyFailure(n protocol.FailureNotice) error {
	d.det.ReportFailure(n.Host, n.Detected)
	return nil
}

func (d detectReporter) ApplyRecovery(n protocol.RecoveryNotice) error {
	d.det.Observe(n.Host, n.Detected)
	return nil
}

// teeReporter forwards Group Manager updates and mirrors workloads into
// the visualization service.
type teeReporter struct {
	next    control.Reporter
	metrics *services.Metrics
	start   time.Time
}

func (t teeReporter) ApplyWorkloads(b protocol.WorkloadBatch) error {
	for _, s := range b.Samples {
		t.metrics.Add("load:"+s.Host, time.Since(t.start), s.Sample.CPULoad)
	}
	return t.next.ApplyWorkloads(b)
}

func (t teeReporter) ApplyFailure(n protocol.FailureNotice) error {
	t.metrics.Add("failures:"+n.Group, time.Since(t.start), 1)
	return t.next.ApplyFailure(n)
}

func (t teeReporter) ApplyRecovery(n protocol.RecoveryNotice) error {
	t.metrics.Add("failures:"+n.Group, time.Since(t.start), 0)
	return t.next.ApplyRecovery(n)
}

// directReporter applies Group Manager updates straight to a repository
// (the no-RPC wiring).
type directReporter struct{ repo *repository.Repository }

func (d directReporter) ApplyWorkloads(b protocol.WorkloadBatch) error {
	samples := make([]repository.HostSample, len(b.Samples))
	for i, s := range b.Samples {
		samples[i] = repository.HostSample{Host: s.Host, Sample: s.Sample}
	}
	_, err := d.repo.Resources.UpdateWorkloads(samples)
	return err
}

func (d directReporter) ApplyFailure(n protocol.FailureNotice) error {
	return d.repo.Resources.SetStatus(n.Host, repository.HostDown)
}

func (d directReporter) ApplyRecovery(n protocol.RecoveryNotice) error {
	return d.repo.Resources.SetStatus(n.Host, repository.HostUp)
}

// Close stops the submission pipeline, daemons, RPC servers, and client
// connections. Queued jobs fail with ErrPipelineClosed; running jobs are
// canceled. With a durable store configured, Close is the graceful
// shutdown: the store compacts and fsyncs, and the shutdown-induced
// terminal states are not persisted — durably, queued and in-flight
// jobs remain queued/running, exactly what the next boot re-adopts.
func (env *Environment) Close() {
	env.shutdown(true)
}

// Crash is the SIGKILL-equivalent teardown (tests and the chaos
// scenario's server-restart fault): everything stops, but the durable
// store is abandoned rather than closed — no final compaction, no
// graceful flush beyond the group-commit batch already handed to the
// OS. Whatever the commit window had not yet accepted is lost, exactly
// as a real crash would lose it; a new Environment on the same StoreDir
// then exercises the true recovery path.
func (env *Environment) Crash() {
	env.shutdown(false)
}

func (env *Environment) shutdown(graceful bool) {
	if env.cancel != nil {
		env.cancel()
	}
	if env.pipe != nil {
		env.pipe.stop()
	}
	env.mu.Lock()
	clients := env.remoteClients
	env.remoteClients = nil
	env.mu.Unlock()
	for _, rc := range clients {
		rc.Close()
	}
	for _, sm := range env.Managers {
		sm.Close()
	}
	if env.Store != nil {
		if graceful {
			env.Store.Close()
		} else {
			env.Store.Abandon()
		}
	}
}

// Recovery reports what this Environment's boot replay of the durable
// store did: queued jobs re-admitted, in-flight jobs re-dispatched,
// terminal jobs retained. The zero report means there was no store or
// it was empty.
func (env *Environment) Recovery() RecoveryReport {
	return env.pipe.recovery
}

// siteServices resolves site index i's scheduling services: its local
// site plus every other site as a remote (over RPC when the environment
// runs Site Managers). Dialed clients are owned by the environment and
// released on Close.
func (env *Environment) siteServices(i int) (core.SiteService, []core.SiteService, error) {
	if i < 0 || i >= len(env.Sites) {
		return nil, nil, fmt.Errorf("vdce: no site %d", i)
	}
	var remotes []core.SiteService
	for j, s := range env.Sites {
		if j == i {
			continue
		}
		if len(env.Managers) == len(env.Sites) {
			rc, err := control.DialSite(s.SiteName(), env.Managers[j].Addr())
			if err != nil {
				return nil, nil, err
			}
			env.mu.Lock()
			env.remoteClients = append(env.remoteClients, rc)
			env.mu.Unlock()
			remotes = append(remotes, rc)
		} else {
			remotes = append(remotes, s)
		}
	}
	return env.Sites[i], remotes, nil
}

// SchedulerAt returns the Application Scheduler of site index i: its
// local site plus every other site as a remote (over RPC when the
// environment runs Site Managers).
func (env *Environment) SchedulerAt(i int, k int) (*core.Scheduler, error) {
	local, remotes, err := env.siteServices(i)
	if err != nil {
		return nil, err
	}
	return core.NewScheduler(local, remotes, env.Net, k), nil
}

// CostFunc derives the level-computation cost function for g from site
// 0's task-performance database (every site holds the same catalog).
func (env *Environment) CostFunc(g *afg.Graph) (afg.CostFunc, error) {
	if len(env.Sites) == 0 {
		return nil, errors.New("vdce: no sites")
	}
	oracle := env.Sites[0].Oracle
	costs := make([]float64, len(g.Tasks))
	for i, task := range g.Tasks {
		d, err := oracle.BaseTimeFor(task.Name)
		if err != nil {
			return nil, err
		}
		costs[i] = d.Seconds()
	}
	return func(id afg.TaskID) float64 { return costs[id] }, nil
}

// Schedule runs the distributed scheduler from site 0 with the
// environment's K.
func (env *Environment) Schedule(g *afg.Graph, k int) (*core.AllocationTable, error) {
	sched, err := env.SchedulerAt(0, k)
	if err != nil {
		return nil, err
	}
	cost, err := env.CostFunc(g)
	if err != nil {
		return nil, err
	}
	return sched.Schedule(g, cost)
}

// Run schedules and executes g, returning both artifacts.
func (env *Environment) Run(ctx context.Context, g *afg.Graph, k int) (*core.AllocationTable, *exec.Result, error) {
	table, err := env.Schedule(g, k)
	if err != nil {
		return nil, nil, err
	}
	res, err := env.Engine.Execute(ctx, g, table)
	if err != nil {
		return table, nil, err
	}
	return table, res, nil
}

// ClampK applies the owner's access domain type (the fifth field of the
// paper's user-account tuple) to a requested neighbor count: local users
// stay on the submitting site, campus users reach at most the two
// nearest sites, global users are unrestricted. Unknown owners are
// treated as local.
func (env *Environment) ClampK(owner string, k int) int {
	acct, err := env.Sites[0].Repo.Users.Lookup(owner)
	if err != nil {
		return 0
	}
	switch acct.Domain {
	case repository.DomainGlobal:
		return k
	case repository.DomainCampus:
		if k > 2 {
			return 2
		}
		return k
	default:
		return 0
	}
}

// EditorServer returns an Application Editor wired to site 0's accounts
// and a submitter that schedules (and optionally executes) submissions.
// The submitting user's access domain bounds how many neighbor sites the
// scheduler may use. Executed submissions go through the concurrent
// submission pipeline, so simultaneous editor clients are served
// simultaneously.
//
// When execute is true the editor also speaks the versioned job-control
// API: POST /v1/apps/{id}/submit enqueues with per-job priority,
// deadline, and max-hosts, and /v1/jobs (mounted owner-scoped, so users
// cancel only their own jobs) serves status and cancellation.
func (env *Environment) EditorServer(execute bool, k int) *editor.Server {
	users := env.Sites[0].Repo.Users
	srv := editor.NewServer(users, env.Registry, func(ctx context.Context, owner string, g *afg.Graph) (any, error) {
		if !execute {
			return env.Schedule(g, env.ClampK(owner, k))
		}
		job, err := env.Submit(ctx, g, WithOwner(owner), WithMaxHosts(k))
		if err != nil {
			return nil, err
		}
		if err := job.Wait(ctx); err != nil {
			return nil, err
		}
		res := job.Result()
		return map[string]any{
			"job":      job.ID,
			"state":    job.State().String(),
			"table":    job.Table(),
			"makespan": res.Makespan.String(),
			"runs":     len(res.Runs),
		}, nil
	})
	if execute {
		srv.SubmitJob = func(ctx context.Context, owner string, g *afg.Graph, o editor.JobOptions) (services.JobStatus, error) {
			opts := []SubmitOption{WithOwner(owner), WithMaxHosts(k)}
			if o.MaxHosts != nil {
				opts = append(opts, WithMaxHosts(*o.MaxHosts))
			}
			if o.Priority != nil {
				opts = append(opts, WithPriority(*o.Priority))
			}
			if o.ShareWeight != nil {
				opts = append(opts, WithShareWeight(*o.ShareWeight))
			}
			if o.Deadline > 0 {
				opts = append(opts, WithDeadline(time.Now().Add(o.Deadline)))
			}
			job, err := env.Submit(ctx, g, opts...)
			if err != nil {
				var se *ShedError
				switch {
				case errors.As(err, &se):
					// Adaptive load shedding: surface as 503 + Retry-After,
					// carrying the shedder's reason and backoff hint.
					err = &editor.OverloadedError{
						RetryAfter: se.RetryAfter, Reason: se.Reason, Err: err,
					}
				case errors.Is(err, ErrQuotaExceeded):
					// Per-owner admission quota: a 429, not a 400 — the
					// request was fine, the owner must back off.
					err = fmt.Errorf("%w: %v", editor.ErrQuotaExceeded, err)
				case errors.Is(err, ErrJobDeadlineExceeded), errors.Is(err, ErrJobCanceled),
					errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					// Failures the request itself caused surface as 400s.
					err = fmt.Errorf("%w: %v", editor.ErrBadSubmission, err)
				}
				return services.JobStatus{}, err
			}
			return job.Status(), nil
		}
		srv.Jobs = env.JobsHandler(jobsapi.Config{
			Authenticate: srv.SessionUser,
			OwnerScoped:  true,
		})
	}
	return srv
}

// JobsHandler mounts the versioned job-control API (/v1/jobs) over this
// environment's pipeline. The caller supplies authentication and
// scoping; Source is filled in, and unless the caller overrides them,
// the event broker and per-owner request rate limit come from the
// pipeline configuration — so every mount (vdce-server, editor) streams
// the same events and enforces the same budget.
func (env *Environment) JobsHandler(cfg jobsapi.Config) http.Handler {
	cfg.Source = env
	if cfg.Events == nil {
		cfg.Events = env.pipe.events
	}
	if !cfg.RateLimit.Enabled() {
		cfg.RateLimit = env.pipe.cfg.APIRate
	}
	if cfg.Metrics == nil {
		// Every mount shares the environment's registry, so per-owner
		// throttle counters aggregate across mounts and /v1/owners can
		// never disagree with /metrics.
		cfg.Metrics = env.Obs
	}
	return jobsapi.Handler(cfg)
}

// JobTrace returns the lifecycle trace of one retained job. It
// satisfies jobsapi.TraceSource, so mounting the jobs API on an
// Environment exposes traces as GET /v1/jobs/{id}/trace.
func (env *Environment) JobTrace(id string) (services.JobTrace, bool) {
	j, ok := env.pipe.job(id)
	if !ok {
		return services.JobTrace{}, false
	}
	return j.Trace(), true
}

// Hosts reports every testbed host's health snapshot — host-model
// up/down, failure-detector state (when a detector runs), and
// circuit-breaker state (when breakers run). It satisfies
// jobsapi.HostSource, so mounting the jobs API on an Environment
// exposes the snapshot as GET /v1/hosts.
func (env *Environment) Hosts() []services.HostStatus {
	var brk map[string]breaker.HostStatus
	if env.Breakers != nil {
		snap := env.Breakers.Snapshot()
		brk = make(map[string]breaker.HostStatus, len(snap))
		for _, hs := range snap {
			brk[hs.Host] = hs
		}
	}
	var out []services.HostStatus
	for _, s := range env.TB.Sites {
		for _, h := range s.Hosts {
			hs := services.HostStatus{
				Host:    h.Name,
				Site:    s.Name,
				Up:      h.Reachable() && !h.Failed(),
				Breaker: breaker.Closed.String(),
			}
			if env.Detector != nil {
				if st, ok := env.Detector.State(h.Name); ok {
					hs.Detector = st.String()
				}
			}
			if b, ok := brk[h.Name]; ok {
				hs.Breaker = b.State
				hs.FailureRate = b.FailureRate
				hs.Samples = b.Samples
				// Opens come from the shared registry counter (fed by the
				// OnTransition hook), the same cell /metrics exposes, so the
				// two surfaces cannot disagree.
				hs.BreakerOpens = int(env.obsM.breakerOpens.Value(h.Name))
			}
			out = append(out, hs)
		}
	}
	return out
}

// RefreshMonitoring synchronously refreshes every site's resource DB
// from the host models (one monitor round), for callers that do not run
// the daemons. When the failure detector runs, the round's samples also
// count as heartbeats, exactly as daemon-delivered ones would.
func (env *Environment) RefreshMonitoring(now time.Time) error {
	if env.Detector != nil {
		for _, h := range env.TB.AllHosts() {
			if h.Reachable() {
				env.Detector.Observe(h.Name, now)
			}
		}
	}
	return env.TB.RefreshRepos(now)
}
