package vdce

import (
	"context"
	"strings"
	"testing"
	"time"

	"vdce/internal/core"
	"vdce/internal/repository"
	"vdce/internal/tasklib"
	"vdce/internal/testbed"
)

func newEnv(t *testing.T, cfg Config) *Environment {
	t.Helper()
	env, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestEnvironmentEndToEndInProcess(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 2, HostsPerGroup: 3, Seed: 21, BaseLoadMax: 0.2},
	})
	g, err := tasklib.BuildLinearEquationSolver(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		task.Props.MachineType = ""
	}
	table, res, err := env.Run(context.Background(), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(g); err != nil {
		t.Fatal(err)
	}
	residual := res.Outputs[g.Exits()[0]][0].(float64)
	if residual > 1e-7 {
		t.Fatalf("residual %g", residual)
	}
}

func TestEnvironmentEndToEndRPC(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 3, HostsPerGroup: 2, Seed: 22, BaseLoadMax: 0.2},
		UseRPC:  true,
	})
	if len(env.Managers) != 3 {
		t.Fatalf("managers = %d", len(env.Managers))
	}
	g, err := tasklib.BuildC3IPipeline(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	table, res, err := env.Run(context.Background(), g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(g); err != nil {
		t.Fatal(err)
	}
	report := res.Outputs[g.Exits()[0]][0].(string)
	if !strings.Contains(report, "C3I THREAT REPORT") {
		t.Fatalf("report = %q", report)
	}
}

func TestEnvironmentDaemonsMaintainRepos(t *testing.T) {
	env := newEnv(t, Config{
		Testbed:       testbed.Config{Sites: 1, HostsPerGroup: 3, Seed: 23},
		StartDaemons:  true,
		MonitorPeriod: 5 * time.Millisecond,
	})
	victim := env.TB.Sites[0].Hosts[1]
	victim.Fail()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := env.Sites[0].Repo.Resources.Host(victim.Name)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status == repository.HostDown {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemons never marked the failed host down")
}

func TestEnvironmentEditorIntegration(t *testing.T) {
	env := newEnv(t, Config{
		Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 24},
	})
	srv := env.EditorServer(false, 0)
	// Authenticate against the pre-provisioned account and submit a tiny
	// app through the same Submitter the HTTP handler uses.
	if _, err := env.Sites[0].Repo.Users.Authenticate("user_k", "vdce"); err != nil {
		t.Fatal(err)
	}
	g, err := tasklib.BuildC3IPipeline(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Submit(context.Background(), "user_k", g)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no allocation table returned")
	}
}

func TestCostFuncErrorsOnUnknownTask(t *testing.T) {
	env := newEnv(t, Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 1, Seed: 1}})
	g, _ := tasklib.BuildC3IPipeline(4, 1)
	g.Tasks[0].Name = "Unknown_Task"
	if _, err := env.CostFunc(g); err == nil {
		t.Fatal("unknown task cost accepted")
	}
	if _, err := env.SchedulerAt(99, 1); err == nil {
		t.Fatal("bad site index accepted")
	}
}

func TestAccessDomainClampsK(t *testing.T) {
	env := newEnv(t, Config{Testbed: testbed.Config{Sites: 4, HostsPerGroup: 2, Seed: 27}})
	users := env.Sites[0].Repo.Users
	if _, err := users.AddUser("loc", "p", 0, repository.DomainLocal); err != nil {
		t.Fatal(err)
	}
	if _, err := users.AddUser("campus", "p", 0, repository.DomainCampus); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		owner string
		k     int
		want  int
	}{
		{"loc", 3, 0},
		{"campus", 3, 2},
		{"campus", 1, 1},
		{"user_k", 3, 3}, // provisioned global account
		{"ghost", 3, 0},  // unknown users stay local
	}
	for _, c := range cases {
		if got := env.ClampK(c.owner, c.k); got != c.want {
			t.Errorf("ClampK(%s, %d) = %d, want %d", c.owner, c.k, got, c.want)
		}
	}
	// End to end: a local user's submission never leaves site 0.
	srv := env.EditorServer(false, 3)
	g, err := tasklib.BuildC3IPipeline(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Submit(context.Background(), "loc", g)
	if err != nil {
		t.Fatal(err)
	}
	table := out.(*core.AllocationTable)
	for _, e := range table.Entries {
		if e.Site != env.Sites[0].SiteName() {
			t.Fatalf("local-domain task placed on %s", e.Site)
		}
	}
}

func TestDaemonsFeedVisualization(t *testing.T) {
	env := newEnv(t, Config{
		Testbed:       testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 26},
		StartDaemons:  true,
		MonitorPeriod: 5 * time.Millisecond,
	})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for _, name := range env.Metrics.Names() {
			if len(name) > 5 && name[:5] == "load:" && len(env.Metrics.Series(name)) > 0 {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no workload series reached the visualization service")
}

func TestRefreshMonitoring(t *testing.T) {
	env := newEnv(t, Config{Testbed: testbed.Config{Sites: 1, HostsPerGroup: 2, Seed: 2}})
	if err := env.RefreshMonitoring(time.Now()); err != nil {
		t.Fatal(err)
	}
	h := env.TB.Sites[0].Hosts[0]
	rec, err := env.Sites[0].Repo.Resources.Host(h.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.RecentLoads) == 0 {
		t.Fatal("refresh recorded nothing")
	}
}
